(* Offline trace analysis: load exported traces (either format),
   merge multi-process files on their absolute t0s, and render the
   report / flamegraph views.  Pure string/Jsonl transformations so
   the CLI subcommands stay thin and the tests drive this directly. *)

type levt = {
  ts : int64;  (* ns; absolute when the file carried a t0, else rebased *)
  dur : int64; (* ns; < 0 marks an instant *)
  name : string;
  cat : string;
  pid : int;
  tid : int;
  args : (string * Jsonl.t) list;
}

type file = {
  path : string;
  proc : string;
  t0 : int64 option; (* absolute monotonic ns of the file's first event *)
  evs : levt list;
}

let args_of json =
  match Jsonl.mem "args" json with Some (Jsonl.Obj kvs) -> kvs | _ -> []

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_jsonl_event json =
  let get_int k = Jsonl.int_mem k json in
  match (get_int "ts", Jsonl.str_mem "name" json, Jsonl.str_mem "ph" json) with
  | Some ts, Some name, Some ph ->
      let dur =
        if ph = "X" then
          Int64.of_int (Option.value ~default:0 (get_int "dur"))
        else -1L
      in
      Ok
        {
          ts = Int64.of_int ts;
          dur;
          name;
          cat = Option.value ~default:"" (Jsonl.str_mem "cat" json);
          pid = 1;
          tid = Option.value ~default:0 (get_int "tid");
          args = args_of json;
        }
  | _ -> Error "event line needs ts, name, ph"

let load_jsonl path text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  let parse_line i l =
    match Jsonl.of_string l with
    | exception Jsonl.Parse_error m ->
        Error (Printf.sprintf "%s:%d: %s" path i m)
    | json -> Ok json
  in
  let rec go i proc t0 acc = function
    | [] -> Ok { path; proc; t0; evs = List.rev acc }
    | l :: rest -> (
        match parse_line i l with
        | Error _ as e -> e
        | Ok json -> (
            match Jsonl.str_mem "meta" json with
            | Some "elin.trace" ->
                let t0 =
                  match Jsonl.int_mem "t0" json with
                  | Some t -> Some (Int64.of_int t)
                  | None -> t0
                in
                let proc =
                  Option.value ~default:proc (Jsonl.str_mem "proc" json)
                in
                go (i + 1) proc t0 acc rest
            | Some m ->
                Error (Printf.sprintf "%s:%d: unknown meta kind %S" path i m)
            | None ->
                if Jsonl.mem "metric" json <> None then
                  (* metrics snapshot line mixed into the file; skip *)
                  go (i + 1) proc t0 acc rest
                else (
                  match parse_jsonl_event json with
                  | Ok ev -> go (i + 1) proc t0 (ev :: acc) rest
                  | Error m -> Error (Printf.sprintf "%s:%d: %s" path i m))))
  in
  match go 1 (Filename.basename path) None [] lines with
  | Ok f ->
      (* Rebase to absolute time when the meta header gave us t0. *)
      let evs =
        match f.t0 with
        | None -> f.evs
        | Some t0 -> List.map (fun e -> { e with ts = Int64.add e.ts t0 }) f.evs
      in
      Ok { f with evs }
  | Error _ as e -> e

let ns_of_us f = Int64.of_float (Float.round (f *. 1000.))

let load_chrome path json =
  match Jsonl.mem "traceEvents" json with
  | Some (Jsonl.Arr evs_json) ->
      let other = Jsonl.mem "otherData" json in
      let t0 =
        Option.bind other (fun o ->
            Option.map Int64.of_int (Jsonl.int_mem "t0" o))
      in
      let proc =
        match Option.bind other (Jsonl.str_mem "proc") with
        | Some p -> p
        | None -> Filename.basename path
      in
      let parse ev =
        match (Jsonl.float_mem "ts" ev, Jsonl.str_mem "name" ev,
               Jsonl.str_mem "ph" ev) with
        | Some ts, Some name, Some ph ->
            let dur =
              if ph = "X" then
                ns_of_us (Option.value ~default:0. (Jsonl.float_mem "dur" ev))
              else -1L
            in
            Some
              {
                ts = ns_of_us ts;
                dur;
                name;
                cat = Option.value ~default:"" (Jsonl.str_mem "cat" ev);
                pid = Option.value ~default:1 (Jsonl.int_mem "pid" ev);
                tid = Option.value ~default:0 (Jsonl.int_mem "tid" ev);
                args = args_of ev;
              }
        | _ -> None (* metadata events (ph "M") have no ts; skip *)
      in
      let evs = List.filter_map parse evs_json in
      let evs =
        match t0 with
        | None -> evs
        | Some t0 -> List.map (fun e -> { e with ts = Int64.add e.ts t0 }) evs
      in
      Ok { path; proc; t0; evs }
  | _ -> Error (Printf.sprintf "%s: no traceEvents array" path)

let load path =
  match read_all path with
  | exception Sys_error m -> Error m
  | text -> (
      let trimmed = String.trim text in
      let looks_chrome =
        Filename.check_suffix path ".json"
        || (String.length trimmed > 0 && trimmed.[0] = '{'
            && (match String.index_opt trimmed '\n' with
                | None -> Jsonl.mem "traceEvents"
                            (try Jsonl.of_string trimmed
                             with Jsonl.Parse_error _ -> Jsonl.Null)
                          <> None
                | Some _ -> false))
      in
      if looks_chrome then
        match Jsonl.of_string trimmed with
        | exception Jsonl.Parse_error m ->
            Error (Printf.sprintf "%s: %s" path m)
        | json -> load_chrome path json
      else load_jsonl path text)

(* ---------- merge ---------- *)

let merge files =
  let missing = List.filter (fun f -> f.t0 = None) files in
  match missing with
  | f :: _ ->
      Error
        (Printf.sprintf
           "%s: no absolute t0 in trace metadata — re-export with this \
            version (JSONL meta header / Chrome otherData) to merge"
           f.path)
  | [] ->
      let g0 =
        List.fold_left
          (fun acc f ->
            match f.evs with
            | [] -> acc
            | e :: _ -> if Int64.compare e.ts acc < 0 then e.ts else acc)
          Int64.max_int files
      in
      let g0 = if g0 = Int64.max_int then 0L else g0 in
      let open Jsonl in
      let us_of ns = Clock.ns_to_us ns in
      let trace_events =
        List.concat
          (List.mapi
             (fun k f ->
               let pid = k + 1 in
               let meta =
                 Obj
                   [
                     ("name", Str "process_name");
                     ("ph", Str "M");
                     ("pid", Int pid);
                     ("tid", Int 0);
                     ("args", Obj [ ("name", Str f.proc) ]);
                   ]
               in
               meta
               :: List.map
                    (fun e ->
                      let is_span = e.dur >= 0L in
                      Obj
                        ([
                           ("name", Str e.name);
                           ("cat", Str e.cat);
                           ("ph", Str (if is_span then "X" else "i"));
                           ("ts", Float (us_of (Int64.sub e.ts g0)));
                         ]
                        @ (if is_span then [ ("dur", Float (us_of e.dur)) ]
                           else [])
                        @ [ ("pid", Int pid); ("tid", Int e.tid) ]
                        @ (if is_span then [] else [ ("s", Str "t") ])
                        @ if e.args = [] then [] else [ ("args", Obj e.args) ]))
                    f.evs)
             files)
      in
      Ok (Obj [ ("traceEvents", Arr trace_events) ])

(* ---------- shared helpers ---------- *)

let trace_of e =
  match List.assoc_opt "trace" e.args with
  | Some (Jsonl.Str t) -> Some t
  | _ -> None

let spans evs = List.filter (fun e -> e.dur >= 0L) evs
let ms ns = Int64.to_float ns /. 1e6

let pctl sorted q =
  (* nearest-rank on a sorted array *)
  let n = Array.length sorted in
  if n = 0 then 0L
  else
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

(* ---------- report ---------- *)

type attribution = {
  job : string;
  client_ns : int64 option; (* load.job / client.job *)
  server_ns : int64 option; (* net.job: queue + check + route *)
  check_ns : int64 option;  (* sum of svc.job (sub-jobs fold in) *)
}

let attributions evs =
  let tbl : (string, attribution) Hashtbl.t = Hashtbl.create 64 in
  let get id =
    match Hashtbl.find_opt tbl id with
    | Some a -> a
    | None ->
        let a = { job = id; client_ns = None; server_ns = None;
                  check_ns = None } in
        Hashtbl.replace tbl id a;
        a
  in
  let add_opt o v =
    Some (match o with None -> v | Some x -> Int64.add x v)
  in
  let max_opt o v =
    Some (match o with None -> v | Some x -> if Int64.compare v x > 0 then v else x)
  in
  List.iter
    (fun e ->
      match trace_of e with
      | None -> ()
      | Some id -> (
          let a = get id in
          match e.name with
          | "load.job" | "client.job" ->
              Hashtbl.replace tbl id
                { a with client_ns = max_opt a.client_ns e.dur }
          | "net.job" ->
              Hashtbl.replace tbl id
                { a with server_ns = add_opt a.server_ns e.dur }
          | "svc.job" ->
              Hashtbl.replace tbl id
                { a with check_ns = add_opt a.check_ns e.dur }
          | _ -> ()))
    (spans evs);
  Hashtbl.fold (fun _ a acc -> a :: acc) tbl []
  |> List.sort (fun a b -> compare a.job b.job)

let clamp0 ns = if Int64.compare ns 0L < 0 then 0L else ns

(* Longest-duration child chain under a root span.  A child is any
   span strictly inside the parent's window that either shares its
   trace id or sits on the same (pid, tid) lane — the latter picks up
   engine spans, which don't carry trace args. *)
let critical_path evs root =
  let inside p e =
    e != p && e.dur >= 0L
    && Int64.compare e.ts p.ts >= 0
    && Int64.compare (Int64.add e.ts e.dur) (Int64.add p.ts p.dur) <= 0
    && Int64.compare e.dur p.dur <= 0
    && ((trace_of e <> None && trace_of e = trace_of p)
        || (e.pid = p.pid && e.tid = p.tid))
  in
  let rec go p acc =
    let cands = List.filter (inside p) evs in
    match
      List.fold_left
        (fun best e ->
          match best with
          | None -> Some e
          | Some b -> if Int64.compare e.dur b.dur > 0 then Some e else best)
        None cands
    with
    | None -> List.rev acc
    | Some c -> go c (c :: acc)
  in
  go root [ root ]

let report evs =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let sps = spans evs in
  (* per-phase stats *)
  let by_name : (string, int64 list ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun e ->
      match Hashtbl.find_opt by_name e.name with
      | Some l -> l := e.dur :: !l
      | None -> Hashtbl.replace by_name e.name (ref [ e.dur ]))
    sps;
  let rows =
    Hashtbl.fold
      (fun name l acc ->
        let a = Array.of_list !l in
        Array.sort Int64.compare a;
        let total = Array.fold_left Int64.add 0L a in
        (name, Array.length a, total, a) :: acc)
      by_name []
    |> List.sort (fun (_, _, ta, _) (_, _, tb, _) -> Int64.compare tb ta)
  in
  line "== per-phase spans ==";
  line "%-28s %8s %12s %10s %10s %10s %10s" "name" "count" "total_ms"
    "mean_ms" "p50_ms" "p99_ms" "max_ms";
  List.iter
    (fun (name, n, total, a) ->
      line "%-28s %8d %12.3f %10.3f %10.3f %10.3f %10.3f" name n (ms total)
        (ms total /. float_of_int n)
        (ms (pctl a 0.5))
        (ms (pctl a 0.99))
        (ms a.(Array.length a - 1)))
    rows;
  (* per-job attribution *)
  let atts = attributions evs in
  let full =
    List.filter
      (fun a -> a.client_ns <> None && a.server_ns <> None)
      atts
  in
  if atts <> [] then begin
    line "";
    line "== per-job attribution (ms) ==";
    line "%-24s %10s %10s %10s %10s %10s" "job" "client" "network" "queue"
      "check" "other";
    let net_l = ref [] and q_l = ref [] and chk_l = ref [] and cl_l = ref [] in
    List.iter
      (fun a ->
        let client = Option.value ~default:0L a.client_ns in
        let server = Option.value ~default:0L a.server_ns in
        let check = Option.value ~default:0L a.check_ns in
        let network =
          if a.client_ns = None || a.server_ns = None then 0L
          else clamp0 (Int64.sub client server)
        in
        let queue =
          if a.server_ns = None then 0L else clamp0 (Int64.sub server check)
        in
        let other =
          clamp0 (Int64.sub client (Int64.add network (Int64.add queue check)))
        in
        if a.client_ns <> None && a.server_ns <> None then begin
          net_l := network :: !net_l;
          q_l := queue :: !q_l;
          chk_l := check :: !chk_l;
          cl_l := client :: !cl_l
        end;
        line "%-24s %10.3f %10.3f %10.3f %10.3f %10.3f" a.job (ms client)
          (ms network) (ms queue) (ms check) (ms other))
      atts;
    if full <> [] then begin
      let agg name l =
        let a = Array.of_list l in
        Array.sort Int64.compare a;
        let total = Array.fold_left Int64.add 0L a in
        line "%-24s %10.3f %10.3f %10.3f" name
          (ms total /. float_of_int (Array.length a))
          (ms (pctl a 0.5))
          (ms (pctl a 0.99))
      in
      line "";
      line "== aggregate over %d jobs with full client+server spans =="
        (List.length full);
      line "%-24s %10s %10s %10s" "component" "mean_ms" "p50_ms" "p99_ms";
      agg "client (end-to-end)" !cl_l;
      agg "network" !net_l;
      agg "queue wait" !q_l;
      agg "check" !chk_l
    end
  end;
  (* critical path of the slowest end-to-end job (or slowest span) *)
  let root =
    let pick l =
      List.fold_left
        (fun best e ->
          match best with
          | None -> Some e
          | Some b -> if Int64.compare e.dur b.dur > 0 then Some e else best)
        None l
    in
    match
      pick
        (List.filter
           (fun e -> e.name = "load.job" || e.name = "client.job")
           sps)
    with
    | Some r -> Some r
    | None -> pick sps
  in
  (match root with
  | None -> ()
  | Some r ->
      line "";
      line "== critical path (slowest job: %s) =="
        (match trace_of r with Some t -> t | None -> r.name);
      let path = critical_path sps r in
      let prev_dur = ref None in
      List.iter
        (fun e ->
          let pct =
            match !prev_dur with
            | Some p when Int64.compare p 0L > 0 ->
                Printf.sprintf "  (%.0f%% of parent)"
                  (100. *. Int64.to_float e.dur /. Int64.to_float p)
            | _ -> ""
          in
          prev_dur := Some e.dur;
          line "  %-26s %10.3f ms%s" e.name (ms e.dur) pct)
        path);
  Buffer.contents b

(* ---------- flame ---------- *)

(* Collapsed stacks from complete events: per (pid, tid) lane, nest by
   time containment; self time = dur minus direct children.  Output is
   the folded format flamegraph.pl / speedscope consume:
   "proc;a;b;c <self_us>". *)
let flame files =
  let folded : (string, int64) Hashtbl.t = Hashtbl.create 64 in
  let add_stack stack self =
    if Int64.compare self 0L > 0 then
      let key = String.concat ";" (List.rev stack) in
      Hashtbl.replace folded key
        (Int64.add self
           (Option.value ~default:0L (Hashtbl.find_opt folded key)))
  in
  List.iter
    (fun f ->
      let lanes : (int * int, levt list ref) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun e ->
          if e.dur >= 0L then
            let k = (e.pid, e.tid) in
            match Hashtbl.find_opt lanes k with
            | Some l -> l := e :: !l
            | None -> Hashtbl.replace lanes k (ref [ e ]))
        f.evs;
      Hashtbl.iter
        (fun _ l ->
          let evs =
            List.stable_sort
              (fun a b ->
                match Int64.compare a.ts b.ts with
                | 0 -> Int64.compare b.dur a.dur (* outermost first *)
                | c -> c)
              !l
          in
          (* stack of (event, names_rev, child_total) *)
          let stack = ref [] in
          let close_one () =
            match !stack with
            | [] -> ()
            | (e, names, child_total) :: rest ->
                add_stack names (Int64.sub e.dur child_total);
                (match rest with
                | (p, pn, pc) :: r ->
                    stack := (p, pn, Int64.add pc e.dur) :: r
                | [] -> stack := []);
                ignore names
          in
          let ends e = Int64.add e.ts e.dur in
          List.iter
            (fun e ->
              let rec pop () =
                match !stack with
                | (top, _, _) :: _
                  when Int64.compare (ends top) e.ts <= 0 ->
                    close_one ();
                    pop ()
                | _ -> ()
              in
              pop ();
              let names =
                match !stack with
                | (_, pn, _) :: _ -> e.name :: pn
                | [] -> [ e.name; f.proc ]
              in
              stack := (e, names, 0L) :: !stack)
            evs;
          while !stack <> [] do
            close_one ()
          done)
        lanes)
    files;
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) folded [] in
  let rows = List.sort compare rows in
  let b = Buffer.create 4096 in
  List.iter
    (fun (k, ns) ->
      Buffer.add_string b
        (Printf.sprintf "%s %Ld\n" k (Int64.div ns 1000L)))
    rows;
  Buffer.contents b

(** Offline trace analysis behind [elin trace merge/report/flame].

    Loads exported traces in either format (canonical JSONL with the
    [meta] header, or Chrome trace-event JSON with [otherData]),
    re-absolutizes timestamps from the recorded [t0] when present, and
    renders the analysis views.  Pure (no clocks, no globals) so tests
    drive it directly. *)

type levt = {
  ts : int64;  (** ns; absolute when the file carried a [t0] *)
  dur : int64; (** ns; [< 0] marks an instant *)
  name : string;
  cat : string;
  pid : int;
  tid : int;
  args : (string * Jsonl.t) list;
}

type file = {
  path : string;
  proc : string;  (** process label from the metadata, else basename *)
  t0 : int64 option;
  evs : levt list;
}

(** Load one trace file, auto-detecting the format. *)
val load : string -> (file, string) result

(** Merge multi-process files into one Perfetto-loadable Chrome JSON:
    file [k] becomes pid [k+1] (named by its [proc] label), and all
    timestamps are re-aligned on the shared monotonic clock via each
    file's [t0].  Errors when any input lacks a [t0] — merging
    unaligned traces would silently lie. *)
val merge : file list -> (Jsonl.t, string) result

(** Per-phase duration stats, per-job attribution (client = network +
    queue + check + other, keyed on the propagated trace id), aggregate
    quantiles, and the critical path of the slowest job. *)
val report : levt list -> string

(** Collapsed-stack output ("proc;a;b;c <self_us>" per line) for
    flamegraph.pl / speedscope.  Stacks nest by time containment per
    (pid, tid) lane; counts are span self-time in microseconds. *)
val flame : file list -> string

(** Pure base-object behaviours.

    A base object is a named pure transition system over [Value.t]
    states.  [access] returns *all* permitted (response, next-state)
    pairs: a singleton for linearizable deterministic objects, several
    when an adversary may choose (eventually-linearizable objects
    before stabilization, nondeterministic types).  Both the mutable
    runtime ([Run]) and the exhaustive explorers ([Elin_explore],
    [Elin_valency]) consume this single definition, which keeps the
    semantics of "an object" identical across random testing and model
    checking. *)

open Elin_spec

type t = {
  name : string;
  init : Value.t;
  (* [access ~state ~proc ~step op]: [step] is the global scheduler
     step count, used by stabilize-at-step policies. *)
  access : state:Value.t -> proc:int -> step:int -> Op.t -> (Value.t * Value.t) list;
  (* [step_sensitive state] — may [access] in [state] depend on the
     global [~step] argument?  Partial-order reduction treats a
     step-sensitive access as dependent with every other step (any
     reordering shifts the step indices the access observes); objects
     that ignore [~step] — every [linearizable] object, and
     stabilize-at-step objects once stabilized — answer [false] and
     stay eligible for commutation.  Must over-approximate: answering
     [true] only costs pruning, answering [false] wrongly is unsound. *)
  step_sensitive : Value.t -> bool;
}

(** [linearizable spec] — an atomic object faithful to [spec]; its
    behaviour state is the spec state. *)
let linearizable spec =
  {
    name = Spec.name spec;
    init = Spec.initial spec;
    access = (fun ~state ~proc:_ ~step:_ op -> Spec.apply spec state op);
    step_sensitive = (fun _ -> false);
  }

(** [deterministic_pick rng choices] — how the mutable runtime resolves
    adversary branching: a seeded uniform pick. *)
let pick rng = function
  | [] -> invalid_arg "Base.pick: operation not applicable"
  | [ c ] -> c
  | choices -> Elin_kernel.Prng.choose rng choices

(** A mutable handle over a pure behaviour, used by [Run]. *)
module Live = struct
  type nonrec t = {
    base : t;
    mutable state : Value.t;
    rng : Elin_kernel.Prng.t;
  }

  let create ?(seed = 0) base =
    { base; state = base.init; rng = Elin_kernel.Prng.create seed }

  let access t ~proc ~step op =
    let choices = t.base.access ~state:t.state ~proc ~step op in
    let resp, state' = pick t.rng choices in
    t.state <- state';
    resp

  let state t = t.state
  let reset t = t.state <- t.base.init
end

(** Pure base-object behaviours.

    A base object is a named pure transition system over [Value.t]
    states; [access] returns {e all} permitted (response, next-state)
    pairs — a singleton for linearizable deterministic objects, several
    when an adversary may choose.  The mutable runtime ([Run]) and the
    exhaustive explorers consume this single definition, so random
    testing and model checking exercise identical semantics. *)

open Elin_spec

type t = {
  name : string;
  init : Value.t;
  access :
    state:Value.t -> proc:int -> step:int -> Op.t -> (Value.t * Value.t) list;
      (** [step] is the global scheduler step count, used by
          stabilize-at-step policies. *)
  step_sensitive : Value.t -> bool;
      (** May [access] in this state depend on the global [~step]?
          Partial-order reduction treats step-sensitive accesses as
          dependent with everything; must over-approximate ([true] is
          always safe, a wrong [false] is unsound). *)
}

(** [linearizable spec] — an atomic object faithful to [spec]. *)
val linearizable : Spec.t -> t

(** [pick rng choices] — how the mutable runtime resolves adversary
    branching: a seeded uniform pick. *)
val pick : Elin_kernel.Prng.t -> 'a list -> 'a

(** A mutable handle over a pure behaviour, used by [Run]. *)
module Live : sig
  type base := t
  type t

  val create : ?seed:int -> base -> t
  val access : t -> proc:int -> step:int -> Op.t -> Value.t
  val state : t -> Value.t
  val reset : t -> unit
end

(** Adversarial eventually-linearizable base objects.

    The negative results of the paper (Theorem 12, Prop. 15) quantify
    over *all* behaviours an eventually linearizable object may
    exhibit: in any finite prefix it may return any answer that keeps
    the history weakly consistent, and from some point on it must be
    t-linearizable.  This module realizes that adversary concretely:

    - every access is announced in the object's log (inside the state
      value, so explorers can snapshot it);
    - before stabilization, the response is computed from a *view* —
      a sequential replay of a weakly-consistency-preserving subset of
      announced operations: always the process's own operations, and
      optionally everyone's (the two views the proofs exploit);
    - at stabilization, the full log is merged in announcement order
      into a committed state and the object behaves atomically
      thereafter.

    Weak consistency of every pre-stabilization answer holds by
    construction (the view contains all of the caller's own preceding
    operations, only announced operations, and ends with the current
    operation); the test-suite re-checks it with [Elin_checker.Weak],
    and checks t-linearizability of full object histories with the
    stabilization step as the cut. *)

open Elin_spec

type stabilization =
  | At_step of int         (* global scheduler step reaches the bound *)
  | After_accesses of int  (* the object has served this many accesses *)
  | Never                  (* a purely adversarial prefix, for negative runs *)
  | Immediately            (* degenerates to a linearizable object *)

type view_policy =
  | Own_only     (* deterministic: local-copy semantics until stabilization *)
  | Own_or_all   (* adversary branching: local view or full-log view *)

type config = {
  spec : Spec.t;          (* must be deterministic *)
  stabilization : stabilization;
  view : view_policy;
}

(* State encoding: [committed; log; stabilized; accesses]. *)

let encode ~committed ~log ~stabilized ~accesses =
  Value.list [ committed; Value.list log; Value.bool stabilized; Value.int accesses ]

let decode state =
  match Value.to_list state with
  | [ committed; log; stabilized; accesses ] ->
    (committed, Value.to_list log, Value.to_bool stabilized, Value.to_int accesses)
  | _ -> invalid_arg "Ev_base.decode: malformed state"

let replay spec ops =
  List.fold_left
    (fun q op ->
      match Spec.apply spec q op with
      | (_, q') :: _ -> q'
      | [] -> invalid_arg "Ev_base.replay: operation not applicable")
    (Spec.initial spec) ops

let respond_after spec prefix_ops op =
  let q = replay spec prefix_ops in
  match Spec.apply spec q op with
  | (r, _) :: _ -> r
  | [] -> invalid_arg "Ev_base.respond_after: operation not applicable"

let triggered cfg ~step ~accesses =
  match cfg.stabilization with
  | At_step k -> step >= k
  | After_accesses k -> accesses >= k
  | Never -> false
  | Immediately -> true

(** [stabilized_state cfg state] — force stabilization now: merge the
    log into the committed state.  Idempotent. *)
let stabilized_state cfg state =
  let _, log, stabilized, accesses = decode state in
  if stabilized then state
  else begin
    let ops = List.map (fun e -> snd (Codec.decode_entry e)) log in
    let merged = replay cfg.spec ops in
    encode ~committed:merged ~log ~stabilized:true ~accesses
  end

let make cfg : Base.t =
  let access ~state ~proc ~step op =
    let committed, log, stabilized, accesses = decode state in
    let accesses = accesses + 1 in
    let stabilize_now = (not stabilized) && triggered cfg ~step ~accesses in
    let committed, stabilized =
      if stabilize_now then
        let ops = List.map (fun e -> snd (Codec.decode_entry e)) log in
        (replay cfg.spec ops, true)
      else (committed, stabilized)
    in
    let log' = log @ [ Codec.encode_entry ~proc op ] in
    if stabilized then begin
      match Spec.apply cfg.spec committed op with
      | [] -> invalid_arg "Ev_base: operation not applicable"
      | transitions ->
        List.map
          (fun (r, q') ->
            (r, encode ~committed:q' ~log:log' ~stabilized:true ~accesses))
          transitions
    end
    else begin
      let entries = List.map Codec.decode_entry log in
      let own_ops =
        List.filter_map
          (fun (p, o) -> if p = proc then Some o else None)
          entries
      in
      let all_ops = List.map snd entries in
      let state' =
        encode ~committed ~log:log' ~stabilized:false ~accesses
      in
      let views =
        match cfg.view with
        | Own_only -> [ own_ops ]
        | Own_or_all -> [ own_ops; all_ops ]
      in
      let choices =
        List.map (fun view -> (respond_after cfg.spec view op, state')) views
      in
      (* Deduplicate identical (response, state) choices. *)
      List.sort_uniq
        (fun (r1, s1) (r2, s2) ->
          let c = Value.compare r1 r2 in
          if c <> 0 then c else Value.compare s1 s2)
        choices
    end
  in
  {
    Base.name = Spec.name cfg.spec ^ "~ev";
    init =
      encode ~committed:(Spec.initial cfg.spec) ~log:[] ~stabilized:false
        ~accesses:0;
    access;
    step_sensitive =
      (* Only stabilize-at-step objects read [~step], and only until
         they stabilize; [After_accesses] counts accesses inside the
         state, [Never]/[Immediately] ignore the step entirely. *)
      (fun state ->
        match cfg.stabilization with
        | At_step _ ->
          let _, _, stabilized, _ = decode state in
          not stabilized
        | After_accesses _ | Never | Immediately -> false);
  }

(** Convenience constructors. *)
let local_until_step spec k =
  make { spec; stabilization = At_step k; view = Own_only }

let local_until_accesses spec k =
  make { spec; stabilization = After_accesses k; view = Own_only }

let adversarial_until_step spec k =
  make { spec; stabilization = At_step k; view = Own_or_all }

let never_stabilizing spec = make { spec; stabilization = Never; view = Own_only }

(** Universal values.

    Operations, responses and object states across the whole
    reproduction are drawn from this single type so that histories over
    heterogeneous objects can be stored, hashed, compared and printed
    uniformly — the checkers and the execution-tree explorers depend on
    structural equality and hashing of states.  Typed front-ends (e.g.
    [Elin_runtime.Api.Faicounter]) wrap it. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list

(* --- Atom interning ------------------------------------------------

   The model checker's hot path compares and hashes values millions of
   times ([Memo_key] lookups, canonical fingerprints, dedup of
   adversary choices).  The atoms it actually meets — unit, booleans,
   small ints, the empty list — are hash-consed into immutable pools
   built once at module initialization, so the smart constructors
   return physically shared representatives and [equal] can short-cut
   on [==] before falling back to the structural walk.  The pools are
   immutable after initialization, hence safe to read from any number
   of OCaml 5 domains with no locking; values built directly through
   the (public) constructors simply miss the fast path, never
   correctness. *)

let unit = Unit

let atom_true = Bool true
let atom_false = Bool false
let bool b = if b then atom_true else atom_false

let small_lo = -256
let small_hi = 1024
let small_ints = Array.init (small_hi - small_lo + 1) (fun i -> Int (small_lo + i))
let int n = if n >= small_lo && n <= small_hi then small_ints.(n - small_lo) else Int n

let str s = Str s
let pair a b = Pair (a, b)

let nil = List []
let list = function [] -> nil | xs -> List xs

(* Structural equality/comparison/hashing are exactly what we need:
   values contain no functions or cycles.  [equal] takes the
   physical-equality fast path first — interned atoms (and any shared
   substructure) succeed without a walk. *)
let equal (a : t) (b : t) = a == b || a = b

(* [compare] must remain exactly [Stdlib.compare]: adversary-choice
   dedup ([Ev_base]), verdict ordering and the seeded [Base.pick] all
   observe this order, and committed golden outputs depend on it. *)
let compare (a : t) (b : t) = Stdlib.compare a b

let hash (a : t) =
  (* Atom fast paths: no polymorphic-hash dispatch for the common
     cases.  Constants chosen to spread small ints; every path must be
     a function of the value's structure only (interning-oblivious).
     The values are in-process only — they differ from [Hashtbl.hash]
     on atoms and are not stable across versions, so never persist
     them or compare them against a polymorphic hash. *)
  match a with
  | Unit -> 0x2e5a
  | Bool false -> 0x3d71
  | Bool true -> 0x58c9
  | Int n -> (n * 0x2545f) land max_int
  | _ -> Hashtbl.hash a

exception Type_error of string

let type_error expected got =
  raise
    (Type_error
       (Format.asprintf "expected %s, got %a" expected
          (fun ppf v ->
            match v with
            | Unit -> Format.fprintf ppf "unit"
            | Bool _ -> Format.fprintf ppf "bool"
            | Int _ -> Format.fprintf ppf "int"
            | Str _ -> Format.fprintf ppf "string"
            | Pair _ -> Format.fprintf ppf "pair"
            | List _ -> Format.fprintf ppf "list")
          got))

let to_int = function Int n -> n | v -> type_error "int" v
let to_bool = function Bool b -> b | v -> type_error "bool" v
let to_str = function Str s -> s | v -> type_error "string" v
let to_pair = function Pair (a, b) -> (a, b) | v -> type_error "pair" v
let to_list = function List xs -> xs | v -> type_error "list" v
let to_unit = function Unit -> () | v -> type_error "unit" v

let rec pp ppf = function
  | Unit -> Format.fprintf ppf "()"
  | Bool b -> Format.fprintf ppf "%b" b
  | Int n -> Format.fprintf ppf "%d" n
  | Str s -> Format.fprintf ppf "%S" s
  | Pair (a, b) -> Format.fprintf ppf "(%a, %a)" pp a pp b
  | List xs ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp)
      xs

let to_string v = Format.asprintf "%a" pp v

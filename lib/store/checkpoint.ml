(* Manifests and artefact blobs.  Both share one frame: magic (8) |
   payload length u32 LE | payload | CRC-32(payload) u32 LE, written
   via Ioutil.atomic_write.  The manifest payload is a marshalled
   [manifest] record (pure data, no closures); blobs carry caller
   bytes (Search marshals frontier states with [Marshal.Closures]
   there, hence the exe-digest guard). *)

module Trace = Elin_obs.Trace

type totals = {
  t_states : int;
  t_hits : int;
  t_kept : int;
  t_aux : int;
  t_peak : int;
  t_leaves : int;
  t_cut : int;
}

type per_writer = {
  w_states : int;
  w_hits : int;
  w_kept : int;
  w_leaves : int;
  w_cut : int;
}

type manifest = {
  seq : int;
  identity : string;
  engine : string;
  dedup : bool;
  shards : int;
  writers : int;
  level : int;
  totals : totals;
  per_writer : per_writer array;
  per_domain : int array;
  visited_segments : string list;
  exe_digest : string;
}

let man_magic = "ELINMAN1"
let blob_magic = "ELINBLB1"
let manifest_name seq = Printf.sprintf "MANIFEST.%d" seq

let parse_manifest_name name =
  try Scanf.sscanf name "MANIFEST.%d%!" (fun s -> Some s)
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let frontier_seg ~seq ~writer = Printf.sprintf "ckpt%d-f%d.seg" seq writer
let frontier_blob ~seq ~writer = Printf.sprintf "ckpt%d-f%d.blob" seq writer
let verdicts_blob ~seq ~writer = Printf.sprintf "ckpt%d-v%d.blob" seq writer
let exe_digest () = Digest.to_hex (Digest.file Sys.executable_name)

let write_framed ~dir ~name ~magic payload =
  Ioutil.atomic_write ~dir ~name (fun oc ->
      let head = Buffer.create 12 in
      Buffer.add_string head magic;
      Buffer.add_int32_le head (Int32.of_int (String.length payload));
      output_string oc (Buffer.contents head);
      output_string oc payload;
      let crc = Buffer.create 4 in
      Buffer.add_int32_le crc (Int32.of_int (Crc32.digest_string payload));
      output_string oc (Buffer.contents crc))

let read_framed ~dir ~name ~magic =
  let path = Filename.concat dir name in
  let ic =
    try open_in_bin path
    with Sys_error _ -> Ioutil.corrupt "%s: cannot open" name
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let flen = in_channel_length ic in
      if flen < 16 then Ioutil.corrupt "%s: too short for a frame" name;
      let head = Bytes.create 12 in
      (try really_input ic head 0 12
       with End_of_file -> Ioutil.corrupt "%s: truncated header" name);
      if Bytes.sub_string head 0 8 <> magic then
        Ioutil.corrupt "%s: bad magic" name;
      let plen = Int32.to_int (Bytes.get_int32_le head 8) land 0xFFFFFFFF in
      if flen <> 12 + plen + 4 then
        Ioutil.corrupt "%s: size %d bytes, expected %d (truncated or torn)"
          name flen (12 + plen + 4);
      let payload = Bytes.create plen in
      (try really_input ic payload 0 plen
       with End_of_file -> Ioutil.corrupt "%s: truncated payload" name);
      let crcb = Bytes.create 4 in
      (try really_input ic crcb 0 4
       with End_of_file -> Ioutil.corrupt "%s: truncated checksum" name);
      let crc = Int32.to_int (Bytes.get_int32_le crcb 0) land 0xFFFFFFFF in
      if
        Crc32.finish (Crc32.update Crc32.start payload 0 plen) <> crc
      then Ioutil.corrupt "%s: checksum mismatch" name;
      Bytes.unsafe_to_string payload)

let write_blob ~dir ~name payload = write_framed ~dir ~name ~magic:blob_magic payload
let read_blob ~dir ~name = read_framed ~dir ~name ~magic:blob_magic

(* Best-effort removal of checkpoint [seq]'s private artefacts (its
   manifest, frontier slices, verdict blobs).  Visited segments are
   shared across checkpoints and never touched here. *)
let prune ~dir ~seq =
  if seq >= 1 then begin
    let prefix_f = Printf.sprintf "ckpt%d-" seq in
    let rm name = try Sys.remove (Filename.concat dir name) with Sys_error _ -> () in
    rm (manifest_name seq);
    Array.iter
      (fun name ->
        if String.length name >= String.length prefix_f
           && String.sub name 0 (String.length prefix_f) = prefix_f
        then rm name)
      (try Sys.readdir dir with Sys_error _ -> [||])
  end

let commit ~dir m =
  (* Span (not an instant): the manifest write is a tmp/fsync/rename
     sequence plus pruning — checkpoint stalls at the level barrier
     are exactly what the trace should attribute. *)
  let span_ts = Trace.begin_ns () in
  let payload = Marshal.to_string m [] in
  write_framed ~dir ~name:(manifest_name m.seq) ~magic:man_magic payload;
  prune ~dir ~seq:(m.seq - 2);
  Trace.complete ~cat:"store" ~ts:span_ts "store.checkpoint"
    ~args:
      [
        ("seq", Elin_obs.Jsonl.Int m.seq);
        ("level", Elin_obs.Jsonl.Int m.level);
        ("segments", Elin_obs.Jsonl.Int (List.length m.visited_segments));
      ];
  Elin_obs.Recorder.note "store.checkpoint"
    ~id:(manifest_name m.seq)
    ~args:[ ("level", Elin_obs.Jsonl.Int m.level) ]

let load_latest ~dir =
  let best = ref None in
  Array.iter
    (fun name ->
      match parse_manifest_name name with
      | Some seq -> (
          match !best with
          | Some (s, _) when s >= seq -> ()
          | _ -> best := Some (seq, name))
      | None -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  match !best with
  | None -> None
  | Some (seq, name) ->
      let payload = read_framed ~dir ~name ~magic:man_magic in
      let m : manifest =
        try Marshal.from_string payload 0
        with Failure _ -> Ioutil.corrupt "%s: undecodable manifest" name
      in
      if m.seq <> seq then
        Ioutil.corrupt "%s: manifest claims sequence %d" name m.seq;
      Some m

(** Crash-safe BFS checkpoints: a two-phase manifest commit over the
    sealed artefacts of one level barrier.

    A checkpoint is taken at the level barrier, where the search is
    quiescent — every state of the completed level is expanded and
    deduplicated, none of the next level is.  This is exactly a
    {e stabilization cut} in the paper's sense (see DESIGN.md §14):
    the cut admits no in-flight work, so resuming from it replays the
    identical deterministic search and reaches bit-identical verdicts
    and counts.

    {2 Commit protocol}

    Phase 1 seals every artefact the checkpoint needs — visited
    segments (via {!Tiered_set.flush}), frontier slices, verdict blobs
    — each individually tmp-written, fsynced, renamed.  Phase 2
    commits [MANIFEST.<seq>] the same way.  The manifest {e names}
    its artefacts, so a crash between the phases leaves orphan files
    that no manifest references (harmless; overwritten on reuse) and
    the previous manifest still wins.  A torn manifest write leaves
    only [MANIFEST.<seq>.tmp], which {!load_latest} ignores — the
    old manifest wins.  A committed-but-corrupt manifest raises
    {!Segment.Corrupt}: resume fails loudly (exit 2), it never falls
    back to an older checkpoint or rechecks from scratch. *)

(** End-of-run aggregate counters at the cut.  [t_aux] is an opaque
    extra slot for the layer above Search (Mc stores its POR-pruned
    count there). *)
type totals = {
  t_states : int;
  t_hits : int;
  t_kept : int;
  t_aux : int;
  t_peak : int;
  t_leaves : int;
  t_cut : int;
}

(** One writer's private counters — the barrier engine has one writer,
    the sharded engine one per domain (resume seeds each worker's
    locals from its slot). *)
type per_writer = {
  w_states : int;
  w_hits : int;
  w_kept : int;
  w_leaves : int;
  w_cut : int;
}

type manifest = {
  seq : int;  (** checkpoint sequence number, 1-based *)
  identity : string;
      (** opaque canonical description of the workload + search
          parameters; resume refuses on mismatch *)
  engine : string;
  dedup : bool;
  shards : int;  (** tiered-set shard count *)
  writers : int;  (** frontier/verdict slice count *)
  level : int;  (** completed BFS levels at the cut *)
  totals : totals;
  per_writer : per_writer array;
  per_domain : int array;  (** states expanded per domain *)
  visited_segments : string list;
  exe_digest : string;
      (** [Digest.file Sys.executable_name] of the writer — frontier
          blobs are marshalled with closures, so resume requires the
          same binary (the runtime would reject foreign code pointers
          anyway; this check turns that into a clear error) *)
}

val exe_digest : unit -> string

(** Phase-2 commit: durably write [MANIFEST.<seq>] and prune the
    artefacts of checkpoint [seq - 2] (two manifests are retained so
    the newest commit is never the only copy mid-rename).  Visited
    segments are never pruned — they accumulate monotonically. *)
val commit : dir:string -> manifest -> unit

(** Highest committed manifest, or [None] if the directory holds none.
    [*.tmp] leftovers are ignored (torn commit: old manifest wins).
    Raises {!Segment.Corrupt} if the chosen committed manifest is
    unreadable or fails its checksum. *)
val load_latest : dir:string -> manifest option

(** {2 Artefact blobs}

    Length-prefixed, CRC'd, atomically renamed byte containers for
    marshalled frontier states and verdicts.  Naming is by checkpoint
    sequence and writer slot. *)

val write_blob : dir:string -> name:string -> string -> unit

(** Raises {!Segment.Corrupt} on a missing, truncated, or
    checksum-corrupt blob. *)
val read_blob : dir:string -> name:string -> string

(** [ckpt<seq>-f<writer>.seg] — the frontier slice's (fingerprint,
    payload) set, cross-checked against the re-hydrated states. *)
val frontier_seg : seq:int -> writer:int -> string

(** [ckpt<seq>-f<writer>.blob] — the marshalled frontier states. *)
val frontier_blob : seq:int -> writer:int -> string

(** [ckpt<seq>-v<writer>.blob] — the writer's accumulated verdicts. *)
val verdicts_blob : seq:int -> writer:int -> string

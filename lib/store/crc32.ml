(* CRC-32 (IEEE), reflected, table-driven.  The accumulator is kept
   pre-inverted (the classic ~crc representation) so [update] is one
   table lookup and two xors per byte; [finish] undoes the inversion. *)

type t = int

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let start = 0xFFFFFFFF

let update (c : t) b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Crc32.update";
  let tbl = Lazy.force table in
  let c = ref c in
  for i = off to off + len - 1 do
    c := tbl.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xff)
         lxor (!c lsr 8)
  done;
  !c

let update_string c s = update c (Bytes.unsafe_of_string s) 0 (String.length s)

let finish c = c lxor 0xFFFFFFFF

let digest_string s = finish (update_string start s)

(** CRC-32 (IEEE 802.3, polynomial [0xEDB88320]), table-driven.

    Hand-rolled because the dependency footprint is frozen: segments
    and manifests need a cheap integrity check, not cryptography — a
    CRC catches the torn writes and bit rot the crash-window tests
    inject, and 4 bytes per 4 KiB block is negligible overhead. *)

type t = int  (** the running CRC, always in [0 .. 0xFFFF_FFFF] *)

val start : t

(** [update c b off len] — absorb [len] bytes of [b] from [off]. *)
val update : t -> Bytes.t -> int -> int -> t

val update_string : t -> string -> t

(** [finish c] — the digest of everything absorbed so far.  [update]
    may continue from an un-finished accumulator only; never feed a
    finished digest back in. *)
val finish : t -> t

(** [digest_string s] = [finish (update_string start s)]. *)
val digest_string : string -> t

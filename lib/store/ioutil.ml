(* Shared durable-write plumbing for segments, blobs, and manifests:
   tmp -> fsync -> rename -> directory fsync.  After [atomic_write]
   returns, the file is whole under its final name or absent — the
   crash window never exposes a partial file under a sealed name.

   Also the home of the store layer's one loud-failure exception,
   re-exported as [Segment.Corrupt] (the public face). *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let fsync_dir dir =
  (* Persist the rename itself.  Best-effort: some filesystems refuse
     fsync on directories; the data-file fsync already happened. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let atomic_write ~dir ~name emit =
  let tmp = Filename.concat dir (name ^ ".tmp") in
  let oc = open_out_bin tmp in
  emit oc;
  flush oc;
  (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
  close_out oc;
  Unix.rename tmp (Filename.concat dir name);
  fsync_dir dir

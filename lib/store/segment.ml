(* Sealed sorted-segment files.  Format and protocol in segment.mli /
   DESIGN.md §14.  Everything integrity-bearing is CRC'd: the header,
   every 4 KiB record block, and the trailing block index.  The writer
   never exposes a partially written file under the sealed name
   (tmp -> fsync -> rename -> dir fsync). *)

exception Corrupt = Ioutil.Corrupt

let corrupt fmt = Ioutil.corrupt fmt

let magic = "ELINSEG1"
let version = 1

(* 256 records x 16 bytes = 4 KiB of payload per CRC'd block. *)
let block_records = 256
let record_bytes = 16

let ( <=^ ) a b = Int64.unsigned_compare a b <= 0
let ( <^ ) a b = Int64.unsigned_compare a b < 0

let add_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)

let write ~dir ~name records =
  let n = Array.length records in
  for i = 1 to n - 1 do
    if fst records.(i) <=^ fst records.(i - 1) then
      invalid_arg "Segment.write: records not strictly ascending"
  done;
  let ts = Elin_obs.Trace.begin_ns () in
  let header = Buffer.create 16 in
  add_u32 header version;
  Buffer.add_int64_le header (Int64.of_int n);
  add_u32 header block_records;
  let hs = Buffer.contents header in
  let n_blocks = (n + block_records - 1) / block_records in
  let buf = Buffer.create ((n * record_bytes) + (n_blocks * 12) + 64) in
  Buffer.add_string buf magic;
  add_u32 buf (String.length hs);
  Buffer.add_string buf hs;
  add_u32 buf (Crc32.digest_string hs);
  let index = Buffer.create (n_blocks * 8) in
  let block = Buffer.create (block_records * record_bytes) in
  for b = 0 to n_blocks - 1 do
    let lo = b * block_records in
    let hi = min n (lo + block_records) in
    Buffer.add_int64_le index (fst records.(lo));
    Buffer.clear block;
    for i = lo to hi - 1 do
      let fp, payload = records.(i) in
      Buffer.add_int64_le block fp;
      Buffer.add_int64_le block payload
    done;
    let bs = Buffer.contents block in
    Buffer.add_string buf bs;
    add_u32 buf (Crc32.digest_string bs)
  done;
  let is = Buffer.contents index in
  Buffer.add_string buf is;
  add_u32 buf (Crc32.digest_string is);
  Ioutil.atomic_write ~dir ~name (fun oc -> Buffer.output_buffer oc buf);
  Elin_obs.Trace.complete ~cat:"store" ~ts "store.segment_write"
    ~args:
      [
        ("name", Elin_obs.Jsonl.Str name);
        ("records", Elin_obs.Jsonl.Int n);
        ("bytes", Elin_obs.Jsonl.Int (Buffer.length buf));
      ]

type reader = {
  rname : string;
  path : string;
  fd : Unix.file_descr;
  n : int;
  br : int;  (* block_records as written in this file's header *)
  n_blocks : int;
  data_off : int;
  index : int64 array;  (* first fingerprint of each block *)
  fbytes : int;
  (* Fence pointers: the unsigned-least and -greatest member, valid
     when [n > 0].  [fmax] is read (CRC-checked) from the last block
     at open time, so a corrupt tail fails loudly up front. *)
  fmin : int64;
  mutable fmax : int64;
  cache : Bytes.t;  (* the one cached, CRC-verified block *)
  mutable cached : int;  (* block number in [cache]; -1 = none *)
  mutable closed : bool;
}

let read_exact r off len what =
  let b = Bytes.create len in
  ignore (Unix.lseek r.fd off Unix.SEEK_SET);
  let pos = ref 0 in
  while !pos < len do
    let k = Unix.read r.fd b !pos (len - !pos) in
    if k = 0 then corrupt "%s: truncated reading %s" r.rname what;
    pos := !pos + k
  done;
  b

let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF

(* Record count of block [b] (all full except possibly the last). *)
let block_len r b = if b = r.n_blocks - 1 then r.n - (b * r.br) else r.br

(* File offset of block [b]'s first record byte. *)
let block_off r b = r.data_off + (b * ((r.br * record_bytes) + 4))

(* Load block [b] into the cache, CRC-verified. *)
let load_block r b =
  if r.closed then invalid_arg "Segment: reader closed";
  if r.cached <> b then begin
    let k = block_len r b in
    let len = k * record_bytes in
    let blob = read_exact r (block_off r b) (len + 4) "block" in
    let crc = get_u32 blob len in
    if Crc32.finish (Crc32.update Crc32.start blob 0 len) <> crc then
      corrupt "%s: block %d checksum mismatch" r.rname b;
    Bytes.blit blob 0 r.cache 0 len;
    r.cached <- b
  end

let open_reader ~dir ~name =
  let path = Filename.concat dir name in
  let fd =
    try Unix.openfile path [ Unix.O_RDONLY ] 0
    with Unix.Unix_error (e, _, _) ->
      corrupt "%s: cannot open (%s)" name (Unix.error_message e)
  in
  let fbytes = (Unix.fstat fd).Unix.st_size in
  let r0 =
    {
      rname = name;
      path;
      fd;
      n = 0;
      br = block_records;
      n_blocks = 0;
      data_off = 0;
      index = [||];
      fbytes;
      fmin = 0L;
      fmax = 0L;
      cache = Bytes.create 0;
      cached = -1;
      closed = false;
    }
  in
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        Unix.close fd;
        raise (Corrupt s))
      fmt
  in
  if fbytes < 12 then fail "%s: too short for a segment header" name;
  let head = read_exact r0 0 12 "magic" in
  if Bytes.sub_string head 0 8 <> magic then fail "%s: bad magic" name;
  let hlen = get_u32 head 8 in
  if hlen < 16 || fbytes < 12 + hlen + 4 then
    fail "%s: implausible header length %d" name hlen;
  let hblob = read_exact r0 12 (hlen + 4) "header" in
  let hcrc = get_u32 hblob hlen in
  if Crc32.finish (Crc32.update Crc32.start hblob 0 hlen) <> hcrc then
    fail "%s: header checksum mismatch" name;
  let fver = get_u32 hblob 0 in
  if fver <> version then fail "%s: unsupported version %d" name fver;
  let n64 = Bytes.get_int64_le hblob 4 in
  if Int64.unsigned_compare n64 (Int64.of_int max_int) > 0 then
    fail "%s: implausible record count" name;
  let n = Int64.to_int n64 in
  let br = get_u32 hblob 12 in
  if br <= 0 then fail "%s: bad block size %d" name br;
  let n_blocks = (n + br - 1) / br in
  let data_off = 12 + hlen + 4 in
  let expect =
    data_off + (n * record_bytes) + (n_blocks * 4) + (n_blocks * 8) + 4
  in
  if fbytes <> expect then
    fail "%s: size %d bytes, expected %d (truncated or torn)" name fbytes
      expect;
  let r =
    {
      r0 with
      n;
      br;
      n_blocks;
      data_off;
      fbytes;
      cache = Bytes.create (br * record_bytes);
    }
  in
  let ioff = data_off + (n * record_bytes) + (n_blocks * 4) in
  let iblob =
    try read_exact r ioff ((n_blocks * 8) + 4) "index"
    with Corrupt m ->
      Unix.close fd;
      raise (Corrupt m)
  in
  let icrc = get_u32 iblob (n_blocks * 8) in
  if Crc32.finish (Crc32.update Crc32.start iblob 0 (n_blocks * 8)) <> icrc
  then fail "%s: index checksum mismatch" name;
  let index = Array.init n_blocks (fun i -> Bytes.get_int64_le iblob (i * 8)) in
  for i = 1 to n_blocks - 1 do
    if index.(i) <=^ index.(i - 1) then fail "%s: index not sorted" name
  done;
  let r = { r with index; fmin = (if n_blocks = 0 then 0L else index.(0)) } in
  if r.n > 0 then begin
    (try load_block r (r.n_blocks - 1)
     with Corrupt m ->
       Unix.close fd;
       raise (Corrupt m));
    r.fmax <-
      Bytes.get_int64_le r.cache
        ((block_len r (r.n_blocks - 1) - 1) * record_bytes)
  end;
  r

let name r = r.rname
let length r = r.n
let file_bytes r = r.fbytes
let range r = if r.n = 0 then None else Some (r.fmin, r.fmax)

let probe r fp =
  if r.n_blocks = 0 || fp <^ r.index.(0) then None
  else begin
    (* Last block whose first fingerprint is <= fp. *)
    let lo = ref 0 and hi = ref (r.n_blocks - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if r.index.(mid) <=^ fp then lo := mid else hi := mid - 1
    done;
    let b = !lo in
    load_block r b;
    let k = block_len r b in
    let lo = ref 0 and hi = ref (k - 1) and found = ref None in
    while !found = None && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let cand = Bytes.get_int64_le r.cache (mid * record_bytes) in
      if cand = fp then
        found := Some (Bytes.get_int64_le r.cache ((mid * record_bytes) + 8))
      else if cand <^ fp then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  end

let iter r f =
  for b = 0 to r.n_blocks - 1 do
    load_block r b;
    for i = 0 to block_len r b - 1 do
      f
        (Bytes.get_int64_le r.cache (i * record_bytes))
        (Bytes.get_int64_le r.cache ((i * record_bytes) + 8))
    done
  done

let to_array r =
  let out = Array.make r.n (0L, 0L) in
  let i = ref 0 in
  iter r (fun fp payload ->
      out.(!i) <- (fp, payload);
      incr i);
  out

let close r =
  if not r.closed then begin
    r.closed <- true;
    Unix.close r.fd
  end

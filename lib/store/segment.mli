(** Append-only, sealed segment files of packed fingerprint records —
    the external-memory tier's unit of storage.

    A segment holds a sorted array of [(fingerprint, payload)] pairs:
    the visited-set spill writes [payload = 0]; checkpoint frontier
    segments carry the state's sleep mask (partial-order reduction)
    so the on-disk cut can be cross-checked record-by-record against
    the re-hydrated states on resume.

    {2 Persistence contract: fingerprints only}

    Segments must serialize {e only} {!Elin_kernel.Fingerprint} words
    — never [Hashtbl.hash] / [Value.hash] output.  The seeded FNV-1a
    fingerprints are a pure function of the canonical state encoding,
    so a segment written by one process is probe-correct in any later
    process of any build; [Value.hash] and [Hashtbl.hash] are
    documented as {e in-process only} (lib/spec/value.ml) and nothing
    stops a future stdlib from changing them.  [test_store]'s
    cross-process suite enforces this mechanically: a segment written
    by the test binary must answer identical probes from a freshly
    spawned process.

    {2 On-disk format}

    All integers little-endian; see DESIGN.md §14 for the diagram.

    {v
    magic      8 bytes   "ELINSEG1"
    header_len u32       length of the header blob below
    header     blob      version u32 | n_records u64 | block_records u32
    header_crc u32       CRC-32 of the header blob
    blocks     ...       ceil(n/block_records) blocks, each:
                           k x 16-byte records (fp u64, payload u64)
                           + u32 CRC-32 of the block's record bytes
    index      8 x n_blocks   first fingerprint of each block
    index_crc  u32
    v}

    Records are sorted by {e unsigned} fingerprint; a probe binary
    searches the in-RAM index for the candidate block, reads and
    CRC-checks that one block, and binary searches within it.

    {2 Seal protocol}

    [write] builds [name].tmp, [fsync]s it, renames it onto [name],
    and [fsync]s the directory: a crash leaves either no segment or a
    whole, checksummed one — never a half-written file under the
    sealed name.  Truncated or bit-flipped segments are detected at
    [open_reader] (size arithmetic) or at [probe] (block CRC) and
    raise {!Corrupt}; nothing degrades silently. *)

(** Torn, truncated, or checksum-corrupt on-disk state.  Callers must
    fail loudly (the CLI maps it to exit code 2), never fall back to
    re-checking from scratch. *)
exception Corrupt of string

(** [write ~dir ~name records] — seal [records] as [dir/name].
    [records] must be strictly ascending by unsigned fingerprint
    ([Invalid_argument] otherwise — duplicates included, a segment is
    a set). *)
val write : dir:string -> name:string -> (int64 * int64) array -> unit

type reader

(** Opens and validates header, size arithmetic, and index checksum;
    raises {!Corrupt} on any mismatch.  The reader holds one file
    descriptor and a one-block cache; it is {e not} concurrency-safe —
    callers serialize access (the tiered set probes under its shard
    lock or from the shard's owning domain). *)
val open_reader : dir:string -> name:string -> reader

val name : reader -> string

(** Record count. *)
val length : reader -> int

(** Total on-disk size in bytes (header + blocks + index). *)
val file_bytes : reader -> int

(** Fence pointers: the unsigned-least and -greatest fingerprint in
    the segment ([None] when empty).  The maximum is read — CRC
    checked — from the last block at {!open_reader} time, so it costs
    nothing per probe; callers skip whole segments whose range
    excludes the probed fingerprint. *)
val range : reader -> (int64 * int64) option

(** [probe r fp] — [Some payload] iff [fp] is a member.  One block
    read (cached) + CRC check per miss of the cache. *)
val probe : reader -> int64 -> int64 option

(** Sequential, fully CRC-checked scan in fingerprint order. *)
val iter : reader -> (int64 -> int64 -> unit) -> unit

(** All records, in order (tests and resume-time rehydration). *)
val to_array : reader -> (int64 * int64) array

val close : reader -> unit

(* Hot Hashtbl per shard + sealed sorted segments.  Invariant: within
   a shard, hot and every segment are pairwise disjoint sets, so
   membership = hot hit or any-segment probe hit, and a flush is a
   pure representation change.  Shard routing duplicates
   Shard_set.owner's bit carving (high bits of Fingerprint.mix);
   test_store pins the two functions together. *)

module Fingerprint = Elin_kernel.Fingerprint
module Metrics = Elin_obs.Metrics
module Trace = Elin_obs.Trace
module Recorder = Elin_obs.Recorder
module Jsonl = Elin_obs.Jsonl

type shard_state = {
  lock : Mutex.t;
  hot : (int64, unit) Hashtbl.t;
  mutable readers : Segment.reader list;
  mutable seq : int;  (* next segment sequence number *)
  mutable spilled : int;
  mutable flushes : int;
  mutable disk_probes : int;
  mutable disk_probe_hits : int;
  mutable fence_skips : int;
}

type t = {
  dir : string;
  shard_states : shard_state array;
  n_shards : int;
  hot_capacity : int;
  m_flushes : Metrics.Counter.t;
  m_spilled : Metrics.Counter.t;
  m_disk_probes : Metrics.Counter.t;
  m_disk_hits : Metrics.Counter.t;
  m_fence_skips : Metrics.Counter.t;
  g_segments : Metrics.Gauge.t;
  g_disk_bytes : Metrics.Gauge.t;
  g_hot : Metrics.Gauge.t;
}

let seg_name ~shard ~seq = Printf.sprintf "visited-s%d-%d.seg" shard seq

let parse_seg_name name =
  try Scanf.sscanf name "visited-s%d-%d.seg%!" (fun s q -> Some (s, q))
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let fresh_shard () =
  {
    lock = Mutex.create ();
    hot = Hashtbl.create 1024;
    readers = [];
    seq = 0;
    spilled = 0;
    flushes = 0;
    disk_probes = 0;
    disk_probe_hits = 0;
    fence_skips = 0;
  }

let make ~dir ~shards ~hot_capacity =
  if shards < 1 then invalid_arg "Tiered_set: shards must be >= 1";
  if hot_capacity < 1 then invalid_arg "Tiered_set: hot_capacity must be >= 1";
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  {
    dir;
    shard_states = Array.init shards (fun _ -> fresh_shard ());
    n_shards = shards;
    hot_capacity;
    m_flushes = Metrics.counter "store.flushes";
    m_spilled = Metrics.counter "store.spilled";
    m_disk_probes = Metrics.counter "store.disk_probes";
    m_disk_hits = Metrics.counter "store.disk_probe_hits";
    m_fence_skips = Metrics.counter "store.fence_skips";
    g_segments = Metrics.gauge "store.segments";
    g_disk_bytes = Metrics.gauge "store.disk_bytes";
    g_hot = Metrics.gauge "store.hot_entries";
  }

let create ~dir ~shards ~hot_capacity () = make ~dir ~shards ~hot_capacity

let open_existing ~dir ~shards ~hot_capacity ~segments () =
  let t = make ~dir ~shards ~hot_capacity in
  List.iter
    (fun name ->
      match parse_seg_name name with
      | None ->
          invalid_arg
            (Printf.sprintf "Tiered_set: unparseable segment name %S" name)
      | Some (shard, seq) ->
          if shard < 0 || shard >= shards then
            invalid_arg
              (Printf.sprintf
                 "Tiered_set: segment %S routes to shard %d of %d" name shard
                 shards);
          let s = t.shard_states.(shard) in
          let r = Segment.open_reader ~dir ~name in
          s.readers <- r :: s.readers;
          s.seq <- max s.seq (seq + 1);
          s.spilled <- s.spilled + Segment.length r;
          if Metrics.on () then begin
            Metrics.Gauge.add t.g_segments 1;
            Metrics.Gauge.add t.g_disk_bytes (Segment.file_bytes r)
          end)
    segments;
  (* Newest first, to mirror the order create-path flushes build. *)
  Array.iter
    (fun s ->
      s.readers <-
        List.sort
          (fun a b -> compare (Segment.name b) (Segment.name a))
          s.readers)
    t.shard_states;
  t

let shards t = t.n_shards

let owner t fp =
  (* Must stay bit-identical to Shard_set.owner: high 31 bits of the
     mixed word, mod shard count. *)
  Int64.to_int (Int64.shift_right_logical (Fingerprint.mix fp) 33)
  mod t.n_shards

(* Probe the sealed segments of [s] for [fp].  Caller holds the shard
   (lock or ownership). *)
let probe_disk t s fp =
  match s.readers with
  | [] -> false
  | readers ->
      let ts = Trace.begin_ns () in
      s.disk_probes <- s.disk_probes + 1;
      (* Fence pointers: skip whole segments whose [min, max] range
         (unsigned) excludes [fp] without touching their blocks.  The
         [disk_probes] count is per probe_disk call, NOT per segment,
         so it is unaffected (the committed B10 baseline pins it). *)
      let skips = ref 0 in
      let hit =
        List.exists
          (fun r ->
            match Segment.range r with
            | Some (lo, hi)
              when Int64.unsigned_compare fp lo >= 0
                   && Int64.unsigned_compare fp hi <= 0 ->
              Segment.probe r fp <> None
            | Some _ | None ->
              incr skips;
              false)
          readers
      in
      s.fence_skips <- s.fence_skips + !skips;
      if hit then s.disk_probe_hits <- s.disk_probe_hits + 1;
      if Metrics.on () then begin
        Metrics.Counter.incr t.m_disk_probes;
        Metrics.Counter.add t.m_fence_skips !skips;
        if hit then Metrics.Counter.incr t.m_disk_hits
      end;
      Trace.complete ~cat:"store" ~ts "store.probe"
        ~args:[ ("hit", Elin_obs.Jsonl.Bool hit) ];
      hit

(* Seal [s]'s hot tier as one sorted segment.  Caller holds the
   shard. *)
let flush_locked t shard_idx s =
  let n = Hashtbl.length s.hot in
  if n > 0 then begin
    (* Seal span: sort + write + fsync + reopen — the whole stall the
       spilling domain takes.  Per flush (cold), plus a recorder note
       so a crash right after a seal shows it in the flight dump. *)
    let span_ts = Trace.begin_ns () in
    let records = Array.make n (0L, 0L) in
    let i = ref 0 in
    Hashtbl.iter
      (fun fp () ->
        records.(!i) <- (fp, 0L);
        incr i)
      s.hot;
    Array.sort (fun (a, _) (b, _) -> Int64.unsigned_compare a b) records;
    let name = seg_name ~shard:shard_idx ~seq:s.seq in
    Segment.write ~dir:t.dir ~name records;
    let r = Segment.open_reader ~dir:t.dir ~name in
    s.readers <- r :: s.readers;
    s.seq <- s.seq + 1;
    s.spilled <- s.spilled + n;
    s.flushes <- s.flushes + 1;
    Hashtbl.reset s.hot;
    Metrics.Counter.incr t.m_flushes;
    Metrics.Counter.add t.m_spilled n;
    if Metrics.on () then begin
      Metrics.Gauge.add t.g_segments 1;
      Metrics.Gauge.add t.g_disk_bytes (Segment.file_bytes r);
      Metrics.Gauge.add t.g_hot (-n)
    end;
    Trace.complete ~cat:"store" ~ts:span_ts "store.seal"
      ~args:
        [
          ("shard", Jsonl.Int shard_idx);
          ("records", Jsonl.Int n);
          ("segment", Jsonl.Str name);
        ];
    Recorder.note "store.seal" ~id:name
      ~args:[ ("shard", Jsonl.Int shard_idx); ("records", Jsonl.Int n) ]
  end

(* Core add/mem on a held shard. *)
let add_held t shard_idx s fp =
  if Hashtbl.mem s.hot fp then false
  else if probe_disk t s fp then false
  else begin
    Hashtbl.add s.hot fp ();
    if Metrics.on () then Metrics.Gauge.add t.g_hot 1;
    if Hashtbl.length s.hot >= t.hot_capacity then flush_locked t shard_idx s;
    true
  end

let mem_held t s fp = Hashtbl.mem s.hot fp || probe_disk t s fp

let with_shard t fp f =
  let i = owner t fp in
  let s = t.shard_states.(i) in
  Mutex.lock s.lock;
  match f i s with
  | v ->
      Mutex.unlock s.lock;
      v
  | exception e ->
      Mutex.unlock s.lock;
      raise e

let add t fp = with_shard t fp (fun i s -> add_held t i s fp)
let mem t fp = with_shard t fp (fun _ s -> mem_held t s fp)

let check_owned t ~shard fp fn =
  if shard <> owner t fp then
    invalid_arg (Printf.sprintf "Tiered_set.%s: wrong shard" fn)

let add_owned t ~shard fp =
  check_owned t ~shard fp "add_owned";
  add_held t shard t.shard_states.(shard) fp

let mem_owned t ~shard fp =
  check_owned t ~shard fp "mem_owned";
  mem_held t t.shard_states.(shard) fp

let flush_shard t shard = flush_locked t shard t.shard_states.(shard)

let flush t =
  Array.iteri
    (fun i s ->
      Mutex.lock s.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock s.lock)
        (fun () -> flush_locked t i s))
    t.shard_states

let segment_names t =
  Array.to_list t.shard_states
  |> List.concat_map (fun s -> List.map Segment.name s.readers)
  |> List.sort compare

let cardinal t =
  Array.fold_left
    (fun acc s -> acc + s.spilled + Hashtbl.length s.hot)
    0 t.shard_states

type stats = {
  segments : int;
  disk_bytes : int;
  spilled : int;
  hot : int;
  flushes : int;
  disk_probes : int;
  disk_probe_hits : int;
  fence_skips : int;
}

let stats t =
  Array.fold_left
    (fun acc s ->
      {
        segments = acc.segments + List.length s.readers;
        disk_bytes =
          acc.disk_bytes
          + List.fold_left (fun b r -> b + Segment.file_bytes r) 0 s.readers;
        spilled = acc.spilled + s.spilled;
        hot = acc.hot + Hashtbl.length s.hot;
        flushes = acc.flushes + s.flushes;
        disk_probes = acc.disk_probes + s.disk_probes;
        disk_probe_hits = acc.disk_probe_hits + s.disk_probe_hits;
        fence_skips = acc.fence_skips + s.fence_skips;
      })
    {
      segments = 0;
      disk_bytes = 0;
      spilled = 0;
      hot = 0;
      flushes = 0;
      disk_probes = 0;
      disk_probe_hits = 0;
      fence_skips = 0;
    }
    t.shard_states

let close t =
  Array.iter
    (fun s ->
      List.iter Segment.close s.readers;
      s.readers <- [])
    t.shard_states

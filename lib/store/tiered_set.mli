(** Two-tier visited set: an in-RAM hot [Hashtbl] per shard that spills
    sealed, sorted {!Segment}s to disk when it reaches capacity.

    Dedup semantics are {e exactly} those of {!Elin_kernel.Striped_set}
    / {!Elin_kernel.Shard_set}: a fingerprint is a member iff some
    earlier [add] inserted it, whether it now lives in RAM or on disk.
    Within a shard, the hot table never holds a fingerprint that is
    already on disk (an [add] probes disk before inserting), so the
    segments of one shard are pairwise disjoint and flushing is a pure
    representation change — verdicts, counts, and lex-min
    counterexamples are bit-identical across spill on/off.

    Sharding uses the {e same} owner function as {!Shard_set.owner}
    (high bits of [Fingerprint.mix]), so in the sharded engine the
    tiered shard of a fingerprint coincides with its owning domain and
    the [_owned] entry points need no lock.  The locked [add]/[mem]
    serve the barrier engine (any domain, any shard).

    Flushes trigger at {e exactly} [hot_capacity] entries in a shard —
    a deterministic function of the insertion sequence — so segment
    counts and on-disk bytes are reproducible run to run (and across
    kill/resume), and the resume path can gate on them. *)

type t

(** [create ~dir ~shards ~hot_capacity ()] — fresh set spilling into
    [dir] (created if missing).  [hot_capacity] is per shard. *)
val create : dir:string -> shards:int -> hot_capacity:int -> unit -> t

(** [open_existing ~dir ~shards ~hot_capacity ~segments ()] — attach
    the sealed segments named in [segments] (from a checkpoint
    manifest; names are [visited-s<shard>-<seq>.seg]).  Hot tiers
    start empty; per-shard sequence numbers continue after the
    attached segments.  Raises {!Segment.Corrupt} on any unreadable,
    truncated, or checksum-corrupt segment, and [Invalid_argument] if
    a name routes to a shard >= [shards]. *)
val open_existing :
  dir:string ->
  shards:int ->
  hot_capacity:int ->
  segments:string list ->
  unit ->
  t

val shards : t -> int

(** Same partition as {!Elin_kernel.Shard_set.owner}. *)
val owner : t -> int64 -> int

(** Locked [add] — [true] iff [fp] was not yet a member (barrier
    engine; any domain). *)
val add : t -> int64 -> bool

(** Locked membership probe. *)
val mem : t -> int64 -> bool

(** Owner-discipline [add]: caller must run on the domain owning
    [shard = owner t fp].  No lock — same contract as
    {!Shard_set.add}. *)
val add_owned : t -> shard:int -> int64 -> bool

val mem_owned : t -> shard:int -> int64 -> bool

(** Seal every shard's hot tier to disk (even below capacity) —
    checkpoint barriers use this so the manifest's segment list covers
    the whole visited set.  Locked; call between parallel sections. *)
val flush : t -> unit

(** Owner-discipline flush of one shard (sharded engine's checkpoint
    phase). *)
val flush_shard : t -> int -> unit

(** Sealed segment file names, sorted — the manifest's inventory. *)
val segment_names : t -> string list

(** Total members (hot + spilled); quiescent callers only. *)
val cardinal : t -> int

type stats = {
  segments : int;  (** sealed segments on disk *)
  disk_bytes : int;  (** total bytes of sealed segments *)
  spilled : int;  (** records resident on disk *)
  hot : int;  (** records resident in RAM *)
  flushes : int;  (** spill flushes performed *)
  disk_probes : int;  (** membership probes that reached disk *)
  disk_probe_hits : int;  (** of those, how many found the key *)
  fence_skips : int;
      (** segments skipped by min/max fence pointers without touching
          their blocks (counted per segment, unlike [disk_probes]
          which counts per probe) *)
}

(** Quiescent callers only.  [segments], [disk_bytes], [spilled], and
    [hot] are deterministic for a given insertion sequence;
    [disk_probes]/[disk_probe_hits] depend on probe interleaving and
    must not be exact-gated under > 1 domain. *)
val stats : t -> stats

(** Close all segment readers.  The set must not be used afterwards. *)
val close : t -> unit

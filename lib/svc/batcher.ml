(** Prepared-history cache keyed on (spec name, history text). *)

open Elin_checker

type t = {
  m : Mutex.t;
  cache : (string * string, Engine.prepared) Hashtbl.t;
  metrics : Metrics.t option;
}

let create ?metrics () =
  { m = Mutex.create (); cache = Hashtbl.create 64; metrics }

let note f t = Option.iter f t.metrics

let prepared t ~spec_name ~history_text ~spec h =
  let key = (spec_name, history_text) in
  Mutex.lock t.m;
  match Hashtbl.find_opt t.cache key with
  | Some p ->
    Mutex.unlock t.m;
    note Metrics.prepare_hit t;
    p
  | None -> (
    (* Build inside the lock: [prepare] is linear in the history and
       the guarantee "built once per (history, spec)" is the point of
       the batcher; a second worker wanting the same key blocks
       briefly and then hits. *)
    match Engine.prepare (Engine.for_spec spec) h with
    | p ->
      Hashtbl.replace t.cache key p;
      Mutex.unlock t.m;
      note Metrics.prepare_miss t;
      p
    | exception e ->
      Mutex.unlock t.m;
      raise e)

let size t =
  Mutex.lock t.m;
  let n = Hashtbl.length t.cache in
  Mutex.unlock t.m;
  n

(** The request batcher: service-side reuse of the engine's
    prepare/check_at split.

    [Engine.prepare] builds the cut-independent search structures of a
    (history, spec) pair; they are read-only during checks, so jobs
    that share a history and spec — many cuts probed by a min-t
    search, several checker kinds over one trace, retries at different
    budgets — can share one [prepared] across worker domains.  The
    batcher is that share point: a keyed cache from
    [(spec name, history text)] to the prepared structures, built once
    per key under a lock (so concurrent workers never duplicate the
    preparation work), with hit/miss counts reported to {!Metrics}.

    Per-job budgets and deadlines are layered on afterwards with
    [Engine.rebudget], which never touches the shared structures. *)

open Elin_spec
open Elin_history
open Elin_checker

type t

val create : ?metrics:Metrics.t -> unit -> t

(** [prepared b ~spec_name ~history_text ~spec h] — the cached
    [Engine.prepared] for the key [(spec_name, history_text)],
    building (and caching) it from [spec] and [h] on first use.  The
    caller keys by the job's {e textual} fields, so two jobs share
    iff their wire representations agree — no structural hashing of
    histories on the hot path. *)
val prepared :
  t ->
  spec_name:string ->
  history_text:string ->
  spec:Spec.t ->
  History.t ->
  Engine.prepared

(** Number of distinct (spec, history) keys prepared so far. *)
val size : t -> int

(** CLI exit-code policy: 0 ok, 1 violation, 2 usage, 3 exhausted. *)

type t = Ok | Violation | Usage | Exhausted

let to_int = function Ok -> 0 | Violation -> 1 | Usage -> 2 | Exhausted -> 3

(* Severity is NOT the numeric exit code: usage (2) outranks
   exhaustion (3), because a malformed input taints the whole run
   while exhaustion taints only its job. *)
let severity = function Ok -> 0 | Violation -> 1 | Exhausted -> 2 | Usage -> 3

let combine a b = if severity a >= severity b then a else b

let of_status : Verdict.status -> t = function
  | Verdict.Pass -> Ok
  | Verdict.Violation -> Violation
  | Verdict.Budget_exhausted | Verdict.Timed_out | Verdict.Cancelled
  | Verdict.Busy ->
    Exhausted
  | Verdict.Bad_job _ | Verdict.Failed _ -> Usage

let of_verdicts vs =
  List.fold_left (fun acc v -> combine acc (of_status v.Verdict.status)) Ok vs

(** The one CLI exit-code policy, shared by every [elin] subcommand
    (previously each subcommand improvised):

    {v
    0  verdict-ok: the command ran and the checked property holds
    1  violation / refutation found (a verdict, not an error)
    2  usage or parse error (bad flags, malformed jobs/histories,
       unknown specs, crashed checkers)
    3  budget / timeout exhaustion: no verdict within the bounds
    v}

    When one invocation covers many jobs ([elin batch], [elin serve]),
    codes combine by severity [Usage > Exhausted > Violation > Ok]: a
    malformed input dominates (the run is not trustworthy), resource
    exhaustion dominates a found violation (the verdict set is
    incomplete), and any violation dominates a clean pass. *)

type t = Ok | Violation | Usage | Exhausted

val to_int : t -> int

(** Severity-max combination (commutative, associative, identity
    {!Ok}). *)
val combine : t -> t -> t

val of_status : Verdict.status -> t

(** Fold of {!of_status} over all verdicts; [Ok] for the empty
    list. *)
val of_verdicts : Verdict.t list -> t

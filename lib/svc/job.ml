(** Checking jobs and their JSONL codec. *)

type check = Linearizable | T_lin of int | Min_t | Weak | Full

type t = {
  id : string;
  seq : int;
  spec : string;
  check : check;
  node_budget : int option;
  timeout_ms : int option;
  history_text : string;
  trace : string option;
  parent : string option;
}

let check_to_string = function
  | Linearizable -> "linearizable"
  | T_lin _ -> "t-lin"
  | Min_t -> "min-t"
  | Weak -> "weak"
  | Full -> "full"

let check_of_string s ~t =
  match s with
  | "linearizable" -> Ok Linearizable
  | "t-lin" -> (
    match t with
    | Some t when t >= 0 -> Ok (T_lin t)
    | Some t -> Error (Printf.sprintf "\"t\" must be >= 0, got %d" t)
    | None -> Error "check \"t-lin\" requires an integer field \"t\"")
  | "min-t" -> Ok Min_t
  | "weak" -> Ok Weak
  | "full" -> Ok Full
  | other ->
    Error
      (Printf.sprintf
         "unknown check %S (linearizable, t-lin, min-t, weak, full)" other)

let to_json j =
  let open Jsonl in
  Obj
    ([ ("id", Str j.id); ("spec", Str j.spec);
       ("check", Str (check_to_string j.check)) ]
    @ (match j.check with T_lin t -> [ ("t", Int t) ] | _ -> [])
    @ (match j.node_budget with Some b -> [ ("budget", Int b) ] | None -> [])
    @ (match j.timeout_ms with
      | Some ms -> [ ("timeout_ms", Int ms) ]
      | None -> [])
    @ (match j.trace with Some t -> [ ("trace", Str t) ] | None -> [])
    @ (match j.parent with Some p -> [ ("parent", Str p) ] | None -> [])
    @ [ ("history", Str j.history_text) ])

let of_json ~seq json =
  let ( let* ) = Result.bind in
  let required name = function
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing string field %S" name)
  in
  let* id = required "id" (Jsonl.str_mem "id" json) in
  let* spec = required "spec" (Jsonl.str_mem "spec" json) in
  let* check_s = required "check" (Jsonl.str_mem "check" json) in
  let* history_text = required "history" (Jsonl.str_mem "history" json) in
  let* check = check_of_string check_s ~t:(Jsonl.int_mem "t" json) in
  let node_budget = Jsonl.int_mem "budget" json in
  let timeout_ms = Jsonl.int_mem "timeout_ms" json in
  let trace = Jsonl.str_mem "trace" json in
  let parent = Jsonl.str_mem "parent" json in
  Ok
    { id; seq; spec; check; node_budget; timeout_ms; history_text; trace;
      parent }

let of_line ~seq line =
  match Jsonl.of_string line with
  | exception Jsonl.Parse_error m -> Error m
  | json -> of_json ~seq json

let to_line j = Jsonl.to_string (to_json j)

(** Checking jobs: the unit of work the service accepts.

    A job names a spec (by its {!Elin_spec.Zoo} name), a checker kind,
    optional per-job resource bounds, and carries its history in the
    {!Elin_history.Textio} line format — the service wire format embeds
    the CLI's history format as a JSON string, so any history file
    checkable with [elin check] is submittable as a job.

    Wire format (one JSON object per line):

    {v
    {"id":"j1","spec":"fetch&increment","check":"min-t",
     "budget":100000,"timeout_ms":500,
     "history":"inv 0 0 fetch&inc\nres 0 0 0\n"}
    v}

    [check] is one of ["linearizable"], ["t-lin"] (requires an extra
    integer field ["t"]), ["min-t"], ["weak"], ["full"]; [budget]
    (node budget per DFS run) and [timeout_ms] (wall-clock, per job)
    are optional and default to the pool's settings. *)

type check =
  | Linearizable      (** 0-linearizability *)
  | T_lin of int      (** t-linearizability at the given cut *)
  | Min_t             (** minimal stabilization bound (galloping search) *)
  | Weak              (** weak consistency (Definition 1) *)
  | Full              (** the whole [Report.analyze] battery *)

type t = {
  id : string;           (** caller-chosen; echoed in the verdict *)
  seq : int;             (** submission index; fixes output order *)
  spec : string;         (** spec name, resolved via the pool *)
  check : check;
  node_budget : int option;   (** per-DFS-run expansion budget *)
  timeout_ms : int option;    (** wall-clock budget for the whole job *)
  history_text : string;      (** [Textio] lines *)
  trace : string option;
      (** trace-context id, carried verbatim through the wire and into
          every span recorded for this job — stitches client, server,
          and worker spans into one cross-process trace.  Optional
          field ["trace"]; absent jobs serialize byte-identically to
          the pre-tracing wire format. *)
  parent : string option;
      (** parent span id (a job id): set on decomposed sub-jobs so
          they render as children of the job they were split from.
          Optional field ["parent"]. *)
}

val check_to_string : check -> string

(** [check_of_string s ~t] — [t] is consulted only for ["t-lin"]. *)
val check_of_string : string -> t:int option -> (check, string) result

val to_json : t -> Jsonl.t

(** [of_json ~seq j] — parse a wire object.  The history text is {e
    not} parsed here; malformed histories surface as [bad_job]
    verdicts when the job runs. *)
val of_json : seq:int -> Jsonl.t -> (t, string) result

(** [of_line ~seq line] — {!Jsonl.of_string} + {!of_json}. *)
val of_line : seq:int -> string -> (t, string) result

val to_line : t -> string

(* The codec moved to lib/obs (the one JSON encoder for verdicts,
   bench series, metrics, traces); [Svc.Jsonl] stays as an alias so
   existing callers and the wire format are untouched. *)
include Elin_obs.Jsonl

(** Alias of {!Elin_obs.Jsonl} — the codec was hoisted to [lib/obs] so
    svc verdicts, mc [--json], bench series files, metrics snapshots,
    and trace export share one encoder.  Kept here (with full type
    equality, constructors included) for compatibility. *)

include module type of struct
  include Elin_obs.Jsonl
end

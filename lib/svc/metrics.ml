(** Per-pool service metrics. *)

type t = {
  submitted : int Atomic.t;
  completed : int Atomic.t;
  pass : int Atomic.t;
  violations : int Atomic.t;
  budget_exhausted : int Atomic.t;
  timed_out : int Atomic.t;
  cancelled : int Atomic.t;
  busy : int Atomic.t;
  bad_jobs : int Atomic.t;
  failed : int Atomic.t;
  nodes : int Atomic.t;
  prepare_hits : int Atomic.t;
  prepare_misses : int Atomic.t;
  (* Latency population lives in an [Obs.Metrics] log2 histogram (µs)
     — the one percentile implementation in the repo — plus an exact
     maximum, which bucket upper edges would coarsen. *)
  lat_us : Elin_obs.Metrics.Histogram.t;
  max_us : int Atomic.t;
}

let create () =
  {
    submitted = Atomic.make 0;
    completed = Atomic.make 0;
    pass = Atomic.make 0;
    violations = Atomic.make 0;
    budget_exhausted = Atomic.make 0;
    timed_out = Atomic.make 0;
    cancelled = Atomic.make 0;
    busy = Atomic.make 0;
    bad_jobs = Atomic.make 0;
    failed = Atomic.make 0;
    nodes = Atomic.make 0;
    prepare_hits = Atomic.make 0;
    prepare_misses = Atomic.make 0;
    lat_us = Elin_obs.Metrics.Histogram.create ();
    max_us = Atomic.make 0;
  }

let incr a = Atomic.incr a
let add a n = ignore (Atomic.fetch_and_add a n)

let job_submitted t = incr t.submitted
let prepare_hit t = incr t.prepare_hits
let prepare_miss t = incr t.prepare_misses

let verdict_done t (v : Verdict.t) =
  incr t.completed;
  (match v.Verdict.status with
  | Verdict.Pass -> incr t.pass
  | Verdict.Violation -> incr t.violations
  | Verdict.Budget_exhausted -> incr t.budget_exhausted
  | Verdict.Timed_out -> incr t.timed_out
  | Verdict.Cancelled -> incr t.cancelled
  | Verdict.Busy -> incr t.busy
  | Verdict.Bad_job _ -> incr t.bad_jobs
  | Verdict.Failed _ -> incr t.failed);
  add t.nodes v.Verdict.nodes;
  let us = int_of_float (v.Verdict.wall_ms *. 1000.) in
  Elin_obs.Metrics.Histogram.observe t.lat_us us;
  let rec bump_max () =
    let cur = Atomic.get t.max_us in
    if us > cur && not (Atomic.compare_and_set t.max_us cur us) then
      bump_max ()
  in
  bump_max ()

type snapshot = {
  submitted : int;
  completed : int;
  pass : int;
  violations : int;
  budget_exhausted : int;
  timed_out : int;
  cancelled : int;
  busy : int;
  bad_jobs : int;
  failed : int;
  nodes : int;
  prepare_hits : int;
  prepare_misses : int;
  queue_depth : int;
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
}

let snapshot ?(queue_depth = 0) t =
  (* Percentiles come from the shared [Obs.Metrics.quantile] over the
     merged log2 buckets: upper-edge answers, honest about the
     histogram's resolution.  The maximum is tracked exactly. *)
  let count, _sum, buckets = Elin_obs.Metrics.Histogram.merged t.lat_us in
  let pq q =
    float_of_int (Elin_obs.Metrics.quantile ~count ~buckets q) /. 1000.
  in
  {
    submitted = Atomic.get t.submitted;
    completed = Atomic.get t.completed;
    pass = Atomic.get t.pass;
    violations = Atomic.get t.violations;
    budget_exhausted = Atomic.get t.budget_exhausted;
    timed_out = Atomic.get t.timed_out;
    cancelled = Atomic.get t.cancelled;
    busy = Atomic.get t.busy;
    bad_jobs = Atomic.get t.bad_jobs;
    failed = Atomic.get t.failed;
    nodes = Atomic.get t.nodes;
    prepare_hits = Atomic.get t.prepare_hits;
    prepare_misses = Atomic.get t.prepare_misses;
    queue_depth;
    p50_ms = pq 0.5;
    p99_ms = pq 0.99;
    max_ms = float_of_int (Atomic.get t.max_us) /. 1000.;
  }

let snapshot_to_json s =
  let open Jsonl in
  Obj
    [
      ("submitted", Int s.submitted);
      ("completed", Int s.completed);
      ("pass", Int s.pass);
      ("violations", Int s.violations);
      ("budget_exhausted", Int s.budget_exhausted);
      ("timed_out", Int s.timed_out);
      ("cancelled", Int s.cancelled);
      ("busy", Int s.busy);
      ("bad_jobs", Int s.bad_jobs);
      ("failed", Int s.failed);
      ("nodes", Int s.nodes);
      ("prepare_hits", Int s.prepare_hits);
      ("prepare_misses", Int s.prepare_misses);
      ("queue_depth", Int s.queue_depth);
      ("p50_ms", Float s.p50_ms);
      ("p99_ms", Float s.p99_ms);
      ("max_ms", Float s.max_ms);
    ]

let pp_snapshot ppf s =
  Format.fprintf ppf
    "jobs %d/%d done (pass %d, violations %d, budget %d, timeout %d, \
     cancelled %d, busy %d, bad %d, failed %d)  nodes %d  prepare \
     hits/misses %d/%d  queue %d  latency p50 %.2fms p99 %.2fms max %.2fms"
    s.completed s.submitted s.pass s.violations s.budget_exhausted s.timed_out
    s.cancelled s.busy s.bad_jobs s.failed s.nodes s.prepare_hits
    s.prepare_misses s.queue_depth s.p50_ms s.p99_ms s.max_ms

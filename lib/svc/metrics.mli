(** Per-pool service metrics: lock-free counters bumped by worker
    domains, plus a latency record, snapshotted on demand.

    A snapshot is a consistent-enough (each field individually atomic)
    view for operational logging; {!snapshot_to_json} renders it as
    one JSONL line — the pool's structured log record ([elin batch
    --metrics], one line per spool file under [elin serve]). *)

type t

val create : unit -> t

(** Counter bumps (called by the pool; safe from any domain). *)
val job_submitted : t -> unit

val prepare_hit : t -> unit
val prepare_miss : t -> unit

(** [verdict_done m v] — accounts completion, per-status counters,
    explored nodes, and the job latency [v.wall_ms]. *)
val verdict_done : t -> Verdict.t -> unit

type snapshot = {
  submitted : int;
  completed : int;
  pass : int;
  violations : int;
  budget_exhausted : int;
  timed_out : int;
  cancelled : int;
  busy : int;               (** admission-refused replies (socket server) *)
  bad_jobs : int;
  failed : int;
  nodes : int;              (** total DFS expansions across jobs *)
  prepare_hits : int;       (** Batcher reuses of a prepared history *)
  prepare_misses : int;
  queue_depth : int;        (** jobs waiting at snapshot time *)
  p50_ms : float;           (** latency percentiles over completed jobs,
                                from the shared [Obs.Metrics] log2
                                histogram (bucket-upper-edge answers);
                                [max_ms] is exact *)
  p99_ms : float;
  max_ms : float;
}

val snapshot : ?queue_depth:int -> t -> snapshot
val pp_snapshot : Format.formatter -> snapshot -> unit
val snapshot_to_json : snapshot -> Jsonl.t

(** Worker-pool execution of checking jobs. *)

open Elin_kernel
open Elin_spec
open Elin_history
open Elin_checker

exception Unknown_spec of string

let default_resolve name =
  match
    List.find_opt
      (fun (e : Zoo.entry) -> Spec.name e.Zoo.spec = name)
      (Zoo.all ())
  with
  | Some e -> e.Zoo.spec
  | None -> raise (Unknown_spec name)

(* Cooperative aborts, raised from the budget-poll hook. *)
exception Deadline_passed
exception Cancel_requested

(* Job lifecycle observability: enqueue instants + a span per executed
   job (worker lane = domain id), queue-depth gauge, and a log2
   latency histogram in µs.  All per-job (cold next to a checker run),
   so the handles are bumped whenever the registry is on. *)
module Obs = Elin_obs

let g_queue = Obs.Metrics.gauge "svc.queue"
let m_jobs = Obs.Metrics.counter "svc.jobs"
let h_latency = Obs.Metrics.histogram "svc.latency_us"

type t = {
  input : (Job.t * bool Atomic.t) Chan.t;
  output : Verdict.t Chan.t;
  mutable workers : (unit, exn) result Domain.t array;
  batcher : Batcher.t option;
  resolve : string -> Spec.t;
  default_budget : int option;
  default_timeout_ms : int option;
  metrics : Metrics.t option;
  (* Most recent cancellation flag per job id. *)
  cancels : (string, bool Atomic.t) Hashtbl.t;
  cancels_m : Mutex.t;
  mutable shut_down : bool;
  shutdown_m : Mutex.t;
}

(* ------------------------------------------------------------------ *)
(* Executing one job                                                  *)
(* ------------------------------------------------------------------ *)

let exec pool (job : Job.t) cancel_flag =
  (* Monotonic: a wall-clock adjustment mid-job must not skew the
     latency sample or fire/defer the deadline. *)
  let t0 = Obs.Clock.now_s () in
  let finish ?min_t ?(nodes = 0) ?(memo_hits = 0) status =
    {
      Verdict.job_id = job.Job.id;
      seq = job.Job.seq;
      check = Some job.Job.check;
      status;
      min_t;
      nodes;
      memo_hits;
      wall_ms = (Obs.Clock.now_s () -. t0) *. 1000.;
    }
  in
  match
    let spec = pool.resolve job.Job.spec in
    let h = Textio.of_string job.Job.history_text in
    let deadline =
      match
        (match job.Job.timeout_ms with
        | Some _ as ms -> ms
        | None -> pool.default_timeout_ms)
      with
      | Some ms -> Some (t0 +. (float_of_int ms /. 1000.))
      | None -> None
    in
    let poll () =
      if Atomic.get cancel_flag then raise Cancel_requested;
      match deadline with
      | Some d when Obs.Clock.now_s () > d -> raise Deadline_passed
      | _ -> ()
    in
    (* A job cancelled or expired while queued never starts. *)
    poll ();
    let budget =
      match job.Job.node_budget with
      | Some _ as b -> b
      | None -> pool.default_budget
    in
    let engine_prepared () =
      let p =
        match pool.batcher with
        | Some b ->
          Batcher.prepared b ~spec_name:job.Job.spec
            ~history_text:job.Job.history_text ~spec h
        | None -> Engine.prepare (Engine.for_spec spec) h
      in
      Engine.rebudget p ~node_budget:budget ~poll:(Some poll)
    in
    match job.Job.check with
    | Job.Linearizable | Job.T_lin _ ->
      let cut = match job.Job.check with Job.T_lin t -> t | _ -> 0 in
      let p = engine_prepared () in
      let v = Engine.check_at p ~t:cut in
      finish
        (if v.Engine.ok then Verdict.Pass else Verdict.Violation)
        ~nodes:v.Engine.nodes_explored ~memo_hits:v.Engine.memo_hits
    | Job.Min_t ->
      let p = engine_prepared () in
      let mt, st = Eventual.min_t_prepared p in
      finish
        (match mt with Some _ -> Verdict.Pass | None -> Verdict.Violation)
        ?min_t:mt ~nodes:st.Eventual.nodes ~memo_hits:st.Eventual.memo_hits
    | Job.Weak -> (
      let wcfg = Weak.for_spec ?node_budget:budget ~poll spec in
      match Weak.check wcfg h with
      | Ok () -> finish Verdict.Pass
      | Error _violating -> finish Verdict.Violation)
    | Job.Full ->
      (* The full battery absorbs budget exhaustion into its report
         (partial verdicts are still informative); we surface it as
         the budget_exhausted status.  Poll aborts still escape. *)
      let r = Report.analyze ?node_budget:budget ~poll spec h in
      let nodes, memo_hits =
        match r.Report.search with
        | Some s -> (s.Eventual.nodes, s.Eventual.memo_hits)
        | None -> (0, 0)
      in
      finish
        (if r.Report.budget_exhausted then Verdict.Budget_exhausted
         else if Report.is_eventually_linearizable r then Verdict.Pass
         else Verdict.Violation)
        ?min_t:r.Report.min_t ~nodes ~memo_hits
  with
  | v -> v
  | exception Budget.Exceeded -> finish Verdict.Budget_exhausted
  | exception Deadline_passed -> finish Verdict.Timed_out
  | exception Cancel_requested -> finish Verdict.Cancelled
  | exception Unknown_spec name ->
    finish (Verdict.Bad_job (Printf.sprintf "unknown spec %S" name))
  | exception Textio.Parse_error m ->
    finish (Verdict.Bad_job ("history parse error: " ^ m))
  | exception History.Ill_formed e ->
    finish
      (Verdict.Bad_job
         (Format.asprintf "ill-formed history: %a" History.pp_error e))
  | exception e ->
    (* Crash containment: a raising checker (or spec) fails THIS job;
       the worker keeps serving. *)
    finish (Verdict.Failed (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Workers                                                            *)
(* ------------------------------------------------------------------ *)

let rec worker_loop pool =
  match Chan.take pool.input with
  | None -> () (* input closed and drained: clean exit *)
  | Some (job, cancel_flag) ->
    if Obs.Metrics.on () then Obs.Metrics.Gauge.set g_queue (Chan.length pool.input);
    let span_ts = Obs.Trace.begin_ns () in
    Obs.Recorder.note "job.start" ~id:job.Job.id;
    let v = exec pool job cancel_flag in
    if Obs.Metrics.on () then begin
      Obs.Metrics.Counter.incr m_jobs;
      Obs.Metrics.Histogram.observe h_latency
        (int_of_float (v.Verdict.wall_ms *. 1000.))
    end;
    let status_s = Verdict.status_to_string v.Verdict.status in
    if Obs.Trace.on () then
      Obs.Trace.complete ~cat:"svc" ~ts:span_ts "svc.job"
        ~args:
          ([
             ("id", Obs.Jsonl.Str v.Verdict.job_id);
             ("status", Obs.Jsonl.Str status_s);
           ]
          @ (match job.Job.trace with
            | Some t -> [ ("trace", Obs.Jsonl.Str t) ]
            | None -> [])
          @
          match job.Job.parent with
          | Some p -> [ ("parent", Obs.Jsonl.Str p) ]
          | None -> []);
    Obs.Recorder.note "job.done" ~id:job.Job.id
      ~args:
        [
          ("status", Obs.Jsonl.Str status_s);
          ("wall_ms", Obs.Jsonl.Float v.Verdict.wall_ms);
        ];
    (* A crashed or timed-out job is exactly the post-mortem the
       flight recorder exists for; no-op unless a sink is set. *)
    (match v.Verdict.status with
    | Verdict.Failed _ -> Obs.Recorder.dump ~reason:"job_failed" ~job:job.Job.id ()
    | Verdict.Timed_out ->
      Obs.Recorder.dump ~reason:"job_timeout" ~job:job.Job.id ()
    | _ -> ());
    (* Drop the cancellation entry once the job is done (unless a
       resubmission under the same id has already replaced it): a
       long-lived server must not accumulate one entry per job. *)
    Mutex.lock pool.cancels_m;
    (match Hashtbl.find_opt pool.cancels job.Job.id with
    | Some f when f == cancel_flag -> Hashtbl.remove pool.cancels job.Job.id
    | _ -> ());
    Mutex.unlock pool.cancels_m;
    Option.iter (fun m -> Metrics.verdict_done m v) pool.metrics;
    Chan.put pool.output v;
    worker_loop pool

let create ?(queue_capacity = 64) ?default_budget ?default_timeout_ms
    ?(reuse = true) ?(resolve = default_resolve) ?metrics ~domains () =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  if queue_capacity < 1 then
    invalid_arg "Pool.create: queue_capacity must be >= 1";
  let pool =
    {
      input = Chan.create ~capacity:queue_capacity ();
      output = Chan.create ~capacity:queue_capacity ();
      workers = [||];
      batcher = (if reuse then Some (Batcher.create ?metrics ()) else None);
      resolve;
      default_budget;
      default_timeout_ms;
      metrics;
      cancels = Hashtbl.create 64;
      cancels_m = Mutex.create ();
      shut_down = false;
      shutdown_m = Mutex.create ();
    }
  in
  pool.workers <-
    Array.init domains (fun _ ->
        Domain.spawn (fun () ->
            try Ok (worker_loop pool) with e -> Error e));
  pool

let submit pool (job : Job.t) =
  let flag = Atomic.make false in
  Mutex.lock pool.cancels_m;
  Hashtbl.replace pool.cancels job.Job.id flag;
  Mutex.unlock pool.cancels_m;
  Chan.put pool.input (job, flag);
  if Obs.Metrics.on () then Obs.Metrics.Gauge.set g_queue (Chan.length pool.input);
  Obs.Trace.instant ~cat:"svc" "svc.enqueue"
    ~args:[ ("id", Obs.Jsonl.Str job.Job.id) ];
  Option.iter Metrics.job_submitted pool.metrics

let try_submit pool (job : Job.t) =
  let flag = Atomic.make false in
  Mutex.lock pool.cancels_m;
  Hashtbl.replace pool.cancels job.Job.id flag;
  Mutex.unlock pool.cancels_m;
  if Chan.try_put pool.input (job, flag) then begin
    if Obs.Metrics.on () then
      Obs.Metrics.Gauge.set g_queue (Chan.length pool.input);
    Obs.Trace.instant ~cat:"svc" "svc.enqueue"
      ~args:[ ("id", Obs.Jsonl.Str job.Job.id) ];
    Option.iter Metrics.job_submitted pool.metrics;
    true
  end
  else begin
    (* Refused: de-register the flag we optimistically installed
       (unless someone replaced it meanwhile). *)
    Mutex.lock pool.cancels_m;
    (match Hashtbl.find_opt pool.cancels job.Job.id with
    | Some f when f == flag -> Hashtbl.remove pool.cancels job.Job.id
    | _ -> ());
    Mutex.unlock pool.cancels_m;
    false
  end

let take_verdict pool = Chan.take pool.output

let cancel pool id =
  Mutex.lock pool.cancels_m;
  let flag = Hashtbl.find_opt pool.cancels id in
  Mutex.unlock pool.cancels_m;
  match flag with
  | Some f ->
    Atomic.set f true;
    true
  | None -> false

let queue_depth pool = Chan.length pool.input
let output_depth pool = Chan.length pool.output

let shutdown pool =
  let first_run =
    Mutex.lock pool.shutdown_m;
    let fresh = not pool.shut_down in
    pool.shut_down <- true;
    Mutex.unlock pool.shutdown_m;
    fresh
  in
  if first_run then begin
    Chan.close pool.input;
    (* Join EVERY worker before re-raising anything (the Search.bfs
       discipline): a failure must never leak unjoined domains. *)
    let results = Array.map Domain.join pool.workers in
    Chan.close pool.output;
    Array.iter (function Ok () -> () | Error e -> raise e) results
  end

(* ------------------------------------------------------------------ *)
(* Batch driver                                                       *)
(* ------------------------------------------------------------------ *)

let run_batch ?queue_capacity ?default_budget ?default_timeout_ms ?reuse
    ?resolve ?metrics ~domains jobs =
  let pool =
    create ?queue_capacity ?default_budget ?default_timeout_ms ?reuse ?resolve
      ?metrics ~domains ()
  in
  (* Feed from a separate domain so the main domain can drain verdicts
     concurrently: with both channels bounded, feeding and draining
     from one thread would deadlock once both fill up. *)
  let feeder =
    Domain.spawn (fun () ->
        match
          List.iter (fun j -> submit pool j) jobs;
          shutdown pool
        with
        | () -> Ok ()
        | exception e ->
          (* Unblock the drain loop, then report. *)
          Chan.close pool.input;
          Chan.close pool.output;
          Error e)
  in
  let verdicts = ref [] in
  let rec drain () =
    match take_verdict pool with
    | Some v ->
      verdicts := v :: !verdicts;
      drain ()
    | None -> ()
  in
  drain ();
  (match Domain.join feeder with Ok () -> () | Error e -> raise e);
  List.sort
    (fun a b -> compare a.Verdict.seq b.Verdict.seq)
    !verdicts

(* ------------------------------------------------------------------ *)
(* JSONL front door                                                   *)
(* ------------------------------------------------------------------ *)

let parse_jobs lines =
  let is_blank line = String.trim line = "" in
  let is_comment line =
    let t = String.trim line in
    String.length t > 0 && t.[0] = '#'
  in
  List.concat
    (List.mapi
       (fun i line ->
         if is_blank line || is_comment line then []
         else
           match Job.of_line ~seq:i line with
           | Ok j -> [ `Job j ]
           | Error e ->
             [
               `Bad
                 {
                   Verdict.job_id = Printf.sprintf "line-%d" (i + 1);
                   seq = i;
                   check = None;
                   status = Verdict.Bad_job e;
                   min_t = None;
                   nodes = 0;
                   memo_hits = 0;
                   wall_ms = 0.;
                 };
             ])
       lines)

let run_lines ?queue_capacity ?default_budget ?default_timeout_ms ?reuse
    ?resolve ?metrics ~domains lines =
  let entries = parse_jobs lines in
  let jobs = List.filter_map (function `Job j -> Some j | `Bad _ -> None) entries in
  let bads =
    List.filter_map (function `Bad v -> Some v | `Job _ -> None) entries
  in
  (match metrics with
  | Some m -> List.iter (fun v -> Metrics.verdict_done m v) bads
  | None -> ());
  let done_ =
    run_batch ?queue_capacity ?default_budget ?default_timeout_ms ?reuse
      ?resolve ?metrics ~domains jobs
  in
  List.sort
    (fun a b -> compare a.Verdict.seq b.Verdict.seq)
    (bads @ done_)

(** The batched checking service: a persistent pool of worker domains
    pulling jobs from a bounded channel and emitting structured
    verdicts.

    {2 Shape}

    {v
            submit (blocks when full: backpressure)
    caller ────────────► [Chan: jobs] ──► worker domains (N)
                                              │  per-job budget,
                                              │  deadline, cancel flag,
                                              │  crash containment
    caller ◄──────────── [Chan: verdicts] ◄───┘
            take / run_batch
    v}

    {2 Isolation and containment}

    Each job runs sequentially on one worker under its own
    [Budget.counter] (node budget) and a poll hook checking its
    wall-clock deadline and cancellation flag.  {e Any} exception a
    job raises — a poisoned spec, a malformed history, a checker bug —
    becomes that job's verdict ([bad_job] / [failed] / [timed_out] /
    [budget_exhausted] / [cancelled]); the worker and the pool
    survive.  Only harness-level failures (a worker dying outside job
    execution) propagate, and then via the join-all-then-reraise
    discipline of [Mc.Search.bfs]: {!shutdown} joins every domain
    before re-raising, so no domain is ever leaked.

    {2 Determinism}

    Per-job results are deterministic (the checker is sequential per
    job); only completion {e order} depends on scheduling.  Verdicts
    carry the submission index, and {!run_batch} sorts by it, so batch
    output is independent of [domains] — the same bar as [lib/mc]. *)

open Elin_spec

(** Raised by the default resolver for a spec name outside
    [Zoo.all]. *)
exception Unknown_spec of string

val default_resolve : string -> Spec.t

type t

(** [create ~domains ()] — spawn the workers.

    - [queue_capacity] (default 64) bounds both channels; producers
      block when the service is saturated.
    - [default_budget] / [default_timeout_ms] apply to jobs that carry
      none of their own.
    - [reuse] (default true) routes engine checks through a
      {!Batcher}.
    - [resolve] maps job spec names to specs (default: the
      {!Elin_spec.Zoo} by name); exceptions it raises surface as
      [bad_job].
    - [metrics] receives per-job accounting. *)
val create :
  ?queue_capacity:int ->
  ?default_budget:int ->
  ?default_timeout_ms:int ->
  ?reuse:bool ->
  ?resolve:(string -> Spec.t) ->
  ?metrics:Metrics.t ->
  domains:int ->
  unit ->
  t

(** [submit t job] — enqueue, blocking while the queue is full.
    Raises [Chan.Closed] after {!shutdown}. *)
val submit : t -> Job.t -> unit

(** [try_submit t job] — like {!submit} but never blocks: [false]
    when the queue is full (the socket server's [busy] admission
    path).  Raises [Chan.Closed] after {!shutdown}. *)
val try_submit : t -> Job.t -> bool

(** [take_verdict t] — next completed verdict (completion order);
    [None] once the pool is shut down and drained. *)
val take_verdict : t -> Verdict.t option

(** [cancel t id] — request cooperative cancellation of the most
    recently submitted job with this id; [false] if unknown.  A queued
    job is cancelled before it starts; a running one at its next poll.
    Already-completed jobs are unaffected. *)
val cancel : t -> string -> bool

(** Jobs currently queued (not yet picked up). *)
val queue_depth : t -> int

(** Verdicts emitted by workers and not yet taken. *)
val output_depth : t -> int

(** [shutdown t] — close the job channel, join every worker, then
    close the verdict channel (pending verdicts remain takeable).
    Idempotent.  Re-raises a harness-level worker failure only after
    all domains are joined. *)
val shutdown : t -> unit

(** [run_batch ~domains jobs] — the whole lifecycle: create, feed
    (from a separate domain, so the caller's drain provides the
    backpressure), shut down, and return verdicts sorted back into
    submission order.  Deterministic output for any [domains]. *)
val run_batch :
  ?queue_capacity:int ->
  ?default_budget:int ->
  ?default_timeout_ms:int ->
  ?reuse:bool ->
  ?resolve:(string -> Spec.t) ->
  ?metrics:Metrics.t ->
  domains:int ->
  Job.t list ->
  Verdict.t list

(** [parse_jobs lines] — classify numbered JSONL lines into jobs and
    immediate [bad_job] verdicts; blank and [#]-comment lines are
    skipped (their line numbers still count for [seq]). *)
val parse_jobs :
  string list -> [ `Job of Job.t | `Bad of Verdict.t ] list

(** [run_lines ~domains lines] — {!parse_jobs} + {!run_batch}, with
    the bad-line verdicts merged back in submission order: the engine
    behind [elin batch] and the spool. *)
val run_lines :
  ?queue_capacity:int ->
  ?default_budget:int ->
  ?default_timeout_ms:int ->
  ?reuse:bool ->
  ?resolve:(string -> Spec.t) ->
  ?metrics:Metrics.t ->
  domains:int ->
  string list ->
  Verdict.t list

(* Client-side decomposition of multi-object jobs: one per-object
   sub-history becomes one pool job, so a single multi-object check
   parallelizes across worker domains, and the [Batcher] prepared
   cache is keyed by the (much smaller) sub-history texts.  The
   composed verdict equals the monolithic one by the same arguments as
   [Elin_checker.Decompose] (Lemmas 7–8): statuses combine by
   severity, [min_t] through [Locality.compose_min_t], node counts by
   summation.  Sits entirely in front of [Pool] — the pool itself is
   unchanged. *)

open Elin_checker
open Elin_history

type slot =
  | Whole of Job.t (* submitted as-is (single-object, empty, or unparseable) *)
  | Split of {
      job : Job.t;
      hist : History.t;
      objs : int list;
      subs : Job.t list; (* one per object, in [objs] order *)
    }

(* Sub-jobs inherit budget/timeout; T_lin cuts map through the
   projected cut t_o(t).  Histories the pool would reject parse-fail
   here too and pass through whole, so the bad_job verdict is the
   pool's (identical to the undecomposed path). *)
let expand (j : Job.t) =
  match Textio.of_string j.Job.history_text with
  | exception _ -> Whole j
  | hist -> (
    match History.objs hist with
    | [] | [ _ ] -> Whole j
    | objs ->
      let subs =
        List.map
          (fun o ->
            let ho = History.proj_obj hist o in
            let check =
              match j.Job.check with
              | Job.T_lin t ->
                Job.T_lin (Decompose.sub_cut (History.index_map_obj hist o) ~t)
              | c -> c
            in
            {
              j with
              Job.id = Printf.sprintf "%s#o%d" j.Job.id o;
              check;
              history_text = Textio.to_string ho;
              (* Sub-jobs keep the parent's trace context and name it
                 as their parent span, so a decomposed job renders as
                 one job span with per-object children. *)
              parent = Some j.Job.id;
            })
          objs
      in
      Split { job = j; hist; objs; subs })

let rank = function
  | Verdict.Bad_job _ -> 7
  | Verdict.Failed _ -> 6
  | Verdict.Timed_out -> 5
  | Verdict.Cancelled -> 4
  | Verdict.Budget_exhausted -> 3
  | Verdict.Busy -> 2
  | Verdict.Violation -> 1
  | Verdict.Pass -> 0

let worst_status subs =
  List.fold_left
    (fun acc (v : Verdict.t) ->
      if rank v.Verdict.status > rank acc then v.Verdict.status else acc)
    Verdict.Pass subs

(* Compose the per-object verdicts of one split job back into a single
   verdict carrying the original id/seq/check. *)
let compose ~job ~hist ~objs (subs : Verdict.t list) : Verdict.t =
  let nodes = List.fold_left (fun a v -> a + v.Verdict.nodes) 0 subs in
  let memo_hits = List.fold_left (fun a v -> a + v.Verdict.memo_hits) 0 subs in
  let wall_ms = List.fold_left (fun a v -> max a v.Verdict.wall_ms) 0. subs in
  let composed_min_t () =
    Locality.compose_min_t hist
      (List.map2 (fun o (v : Verdict.t) -> (o, v.Verdict.min_t)) objs subs)
  in
  let status, min_t =
    match worst_status subs with
    | (Verdict.Bad_job _ | Verdict.Failed _ | Verdict.Timed_out
      | Verdict.Cancelled | Verdict.Budget_exhausted | Verdict.Busy) as s ->
      (s, None)
    | Verdict.Pass | Verdict.Violation -> (
      match job.Job.check with
      | Job.Linearizable | Job.T_lin _ | Job.Weak ->
        ((if List.for_all (fun (v : Verdict.t) -> v.Verdict.status = Verdict.Pass) subs
          then Verdict.Pass
          else Verdict.Violation),
         None)
      | Job.Min_t -> (
        match composed_min_t () with
        | Some _ as mt -> (Verdict.Pass, mt)
        | None -> (Verdict.Violation, None))
      | Job.Full ->
        ((if List.for_all (fun (v : Verdict.t) -> v.Verdict.status = Verdict.Pass) subs
          then Verdict.Pass
          else Verdict.Violation),
         composed_min_t ()))
  in
  {
    Verdict.job_id = job.Job.id;
    seq = job.Job.seq;
    check = Some job.Job.check;
    status;
    min_t;
    nodes;
    memo_hits;
    wall_ms;
  }

(* [run_batch] with decomposition: expand, renumber every submitted
   job into a fresh dense seq space (run_batch sorts by it), run ONE
   pool over the union, then fold each split job's sub-verdicts back.
   Output is in original submission order, deterministic for any
   [domains]. *)
let run_batch ?queue_capacity ?default_budget ?default_timeout_ms ?reuse
    ?resolve ?metrics ~domains jobs =
  let slots = List.map expand jobs in
  let next = ref 0 in
  let fresh j =
    let s = { j with Job.seq = !next } in
    incr next;
    s
  in
  let submitted =
    List.concat_map
      (function
        | Whole j -> [ fresh j ]
        | Split s -> List.map fresh s.subs)
      slots
  in
  let verdicts =
    Pool.run_batch ?queue_capacity ?default_budget ?default_timeout_ms ?reuse
      ?resolve ?metrics ~domains submitted
  in
  (* run_batch returns them sorted by the fresh seqs = slot order. *)
  let rec fold slots verdicts acc =
    match slots with
    | [] -> List.rev acc
    | Whole j :: rest ->
      (match verdicts with
      | v :: vs -> fold rest vs ({ v with Verdict.seq = j.Job.seq } :: acc)
      | [] -> List.rev acc)
    | Split { job; hist; objs; subs } :: rest ->
      let n = List.length subs in
      let rec take k vs acc' =
        if k = 0 then (List.rev acc', vs)
        else
          match vs with
          | v :: vs -> take (k - 1) vs (v :: acc')
          | [] -> (List.rev acc', [])
      in
      let mine, vs = take n verdicts [] in
      if List.length mine < n then List.rev acc
      else fold rest vs (compose ~job ~hist ~objs mine :: acc)
  in
  let composed = fold slots verdicts [] in
  List.sort (fun a b -> compare a.Verdict.seq b.Verdict.seq) composed

(* parse + run + merge bad lines: the decomposed twin of
   [Pool.run_lines] (the engine behind [elin batch --decompose]). *)
let run_lines ?queue_capacity ?default_budget ?default_timeout_ms ?reuse
    ?resolve ?metrics ~domains lines =
  let entries = Pool.parse_jobs lines in
  let jobs =
    List.filter_map (function `Job j -> Some j | `Bad _ -> None) entries
  in
  let bads =
    List.filter_map (function `Bad v -> Some v | `Job _ -> None) entries
  in
  (match metrics with
  | Some m -> List.iter (fun v -> Metrics.verdict_done m v) bads
  | None -> ());
  let done_ =
    run_batch ?queue_capacity ?default_budget ?default_timeout_ms ?reuse
      ?resolve ?metrics ~domains jobs
  in
  List.sort (fun a b -> compare a.Verdict.seq b.Verdict.seq) (bads @ done_)

(** Client-side decomposition of multi-object jobs into per-object
    sub-jobs: one sub-history becomes one pool job, so a single
    multi-object check parallelizes across worker domains ([elin
    batch --decompose]).

    The composed verdict equals the monolithic one by the same
    soundness arguments as [Elin_checker.Decompose] (Lemmas 7–8):
    statuses combine by severity (any error-ish sub-status wins, else
    violation, else pass), [min_t] composes exactly through
    [Locality.compose_min_t], and [T_lin] cuts map through the
    projected cut t_o(t).  Node/memo counts are summed across
    sub-jobs and [wall_ms] is the slowest sub-job, so [--stats]
    output differs from the undecomposed path by design; canonical
    (stats-free) verdict lines differ only in those counts.

    Single-object, empty, and unparseable histories pass through
    whole, so error verdicts are the pool's own. *)

val run_batch :
  ?queue_capacity:int ->
  ?default_budget:int ->
  ?default_timeout_ms:int ->
  ?reuse:bool ->
  ?resolve:(string -> Elin_spec.Spec.t) ->
  ?metrics:Metrics.t ->
  domains:int ->
  Job.t list ->
  Verdict.t list

(** The decomposed twin of [Pool.run_lines]: parse, run, merge
    bad-line verdicts back in submission order. *)
val run_lines :
  ?queue_capacity:int ->
  ?default_budget:int ->
  ?default_timeout_ms:int ->
  ?reuse:bool ->
  ?resolve:(string -> Elin_spec.Spec.t) ->
  ?metrics:Metrics.t ->
  domains:int ->
  string list ->
  Verdict.t list

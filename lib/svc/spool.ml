(** Directory spool: [*.jobs] in, [*.verdicts] out. *)

let jobs_ext = ".jobs"
let verdicts_ext = ".verdicts"

let strip_suffix s suf =
  let ls = String.length s and lf = String.length suf in
  if ls >= lf && String.sub s (ls - lf) lf = suf then
    Some (String.sub s 0 (ls - lf))
  else None

let pending ~dir =
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  let names =
    Array.to_list entries
    |> List.filter_map (fun f -> strip_suffix f jobs_ext)
    |> List.filter (fun base ->
           not (Sys.file_exists (Filename.concat dir (base ^ verdicts_ext))))
  in
  List.sort compare names

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* Write-then-rename so readers never see a partial verdict file. *)
let write_atomic path body =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc body);
  Sys.rename tmp path

let process_file ?queue_capacity ?default_budget ?default_timeout_ms ?reuse
    ?resolve ?(stats = false) ?metrics ~domains ~dir name =
  (* A caller-supplied registry accumulates across files (the serve
     shutdown snapshot needs totals, not the last file's); without one
     each file gets its own, as before. *)
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  let lines = read_lines (Filename.concat dir (name ^ jobs_ext)) in
  let verdicts =
    Pool.run_lines ?queue_capacity ?default_budget ?default_timeout_ms ?reuse
      ?resolve ~metrics ~domains lines
  in
  let body =
    String.concat "" (List.map (fun v -> Verdict.to_line ~stats v ^ "\n") verdicts)
  in
  write_atomic (Filename.concat dir (name ^ verdicts_ext)) body;
  if stats then
    Printf.eprintf "%s\n%!"
      (Jsonl.to_string
         (Jsonl.Obj
            [
              ("file", Jsonl.Str (name ^ jobs_ext));
              ("metrics", Metrics.snapshot_to_json (Metrics.snapshot metrics));
            ]));
  verdicts

let scan_once ?queue_capacity ?default_budget ?default_timeout_ms ?reuse
    ?resolve ?stats ?metrics ~domains ~dir () =
  List.fold_left
    (fun n name ->
      ignore
        (process_file ?queue_capacity ?default_budget ?default_timeout_ms
           ?reuse ?resolve ?stats ?metrics ~domains ~dir name);
      n + 1)
    0 (pending ~dir)

let watch ?queue_capacity ?default_budget ?default_timeout_ms ?reuse ?resolve
    ?stats ?metrics ?(poll_ms = 200) ?(stop = fun () -> false) ~domains ~dir
    () =
  let rec loop () =
    if stop () then ()
    else begin
      let n =
        scan_once ?queue_capacity ?default_budget ?default_timeout_ms ?reuse
          ?resolve ?stats ?metrics ~domains ~dir ()
      in
      if n = 0 then Unix.sleepf (float_of_int poll_ms /. 1000.);
      loop ()
    end
  in
  loop ()

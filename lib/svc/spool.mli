(** Directory spool: the file-system front door to the service.

    A spool directory holds job files named [*.jobs] (JSONL, one
    {!Job} per line).  Processing [NAME.jobs] produces [NAME.verdicts]
    next to it; a [.jobs] file is {e pending} iff its [.verdicts]
    sibling does not exist yet.  Verdict files are written to a
    temporary name and renamed into place, so a concurrent reader
    never observes a partial file and a crash never leaves a
    half-written [.verdicts] masking a pending job file.

    One metrics line (a JSON object, see
    {!Metrics.snapshot_to_json}) is logged per processed file on
    [stderr] when [stats] is set. *)

open Elin_spec

(** [pending ~dir] — basenames (without extension) of [.jobs] files in
    [dir] that have no [.verdicts] sibling, sorted. *)
val pending : dir:string -> string list

(** [process_file ~domains ~dir name] — run [dir/name.jobs] through
    the pool and atomically write [dir/name.verdicts].  Returns the
    verdicts (submission order).  [metrics] substitutes a caller-owned
    registry that accumulates across files (a shutdown snapshot wants
    totals); omitted, each file counts alone. *)
val process_file :
  ?queue_capacity:int ->
  ?default_budget:int ->
  ?default_timeout_ms:int ->
  ?reuse:bool ->
  ?resolve:(string -> Spec.t) ->
  ?stats:bool ->
  ?metrics:Metrics.t ->
  domains:int ->
  dir:string ->
  string ->
  Verdict.t list

(** [scan_once ~domains ~dir ()] — process every pending job file
    once; returns how many files were processed. *)
val scan_once :
  ?queue_capacity:int ->
  ?default_budget:int ->
  ?default_timeout_ms:int ->
  ?reuse:bool ->
  ?resolve:(string -> Spec.t) ->
  ?stats:bool ->
  ?metrics:Metrics.t ->
  domains:int ->
  dir:string ->
  unit ->
  int

(** [watch ~domains ~dir ()] — poll the spool forever (or until
    [stop () = true], checked once per scan): {!scan_once}, sleep
    [poll_ms] (default 200) when idle, repeat. *)
val watch :
  ?queue_capacity:int ->
  ?default_budget:int ->
  ?default_timeout_ms:int ->
  ?reuse:bool ->
  ?resolve:(string -> Spec.t) ->
  ?stats:bool ->
  ?metrics:Metrics.t ->
  ?poll_ms:int ->
  ?stop:(unit -> bool) ->
  domains:int ->
  dir:string ->
  unit ->
  unit

(** Structured verdicts and their JSONL codec. *)

type status =
  | Pass
  | Violation
  | Budget_exhausted
  | Timed_out
  | Cancelled
  | Busy
  | Bad_job of string
  | Failed of string

type t = {
  job_id : string;
  seq : int;
  check : Job.check option;
  status : status;
  min_t : int option;
  nodes : int;
  memo_hits : int;
  wall_ms : float;
}

let status_to_string = function
  | Pass -> "pass"
  | Violation -> "violation"
  | Budget_exhausted -> "budget_exhausted"
  | Timed_out -> "timed_out"
  | Cancelled -> "cancelled"
  | Busy -> "busy"
  | Bad_job _ -> "bad_job"
  | Failed _ -> "failed"

let to_json ?(stats = false) v =
  let open Jsonl in
  Obj
    ([ ("id", Str v.job_id) ]
    @ (match v.check with
      | Some c ->
        ("check", Str (Job.check_to_string c))
        :: (match c with Job.T_lin t -> [ ("t", Int t) ] | _ -> [])
      | None -> [])
    @ [ ("status", Str (status_to_string v.status)) ]
    @ (match v.status with
      | Bad_job e | Failed e -> [ ("error", Str e) ]
      | _ -> [])
    @ (match v.min_t with Some t -> [ ("min_t", Int t) ] | None -> [])
    @ (match v.status with
      | Bad_job _ | Busy -> []
      | _ -> [ ("nodes", Int v.nodes); ("memo_hits", Int v.memo_hits) ])
    @ if stats then [ ("wall_ms", Float v.wall_ms) ] else [])

let to_line ?stats v = Jsonl.to_string (to_json ?stats v)

let status_of_string s ~error =
  let error () = Option.value error ~default:"" in
  match s with
  | "pass" -> Ok Pass
  | "violation" -> Ok Violation
  | "budget_exhausted" -> Ok Budget_exhausted
  | "timed_out" -> Ok Timed_out
  | "cancelled" -> Ok Cancelled
  | "busy" -> Ok Busy
  | "bad_job" -> Ok (Bad_job (error ()))
  | "failed" -> Ok (Failed (error ()))
  | other -> Error (Printf.sprintf "unknown status %S" other)

let of_json ~seq json =
  let ( let* ) = Result.bind in
  let* job_id =
    Option.to_result ~none:"missing field \"id\"" (Jsonl.str_mem "id" json)
  in
  let* status_s =
    Option.to_result ~none:"missing field \"status\""
      (Jsonl.str_mem "status" json)
  in
  let* status =
    status_of_string status_s ~error:(Jsonl.str_mem "error" json)
  in
  let* check =
    match Jsonl.str_mem "check" json with
    | None -> Ok None
    | Some c ->
      let* c = Job.check_of_string c ~t:(Jsonl.int_mem "t" json) in
      Ok (Some c)
  in
  Ok
    {
      job_id;
      seq;
      check;
      status;
      min_t = Jsonl.int_mem "min_t" json;
      nodes = Option.value ~default:0 (Jsonl.int_mem "nodes" json);
      memo_hits = Option.value ~default:0 (Jsonl.int_mem "memo_hits" json);
      wall_ms = Option.value ~default:0. (Jsonl.float_mem "wall_ms" json);
    }

let pp ppf v =
  Format.fprintf ppf "%s: %s%a" v.job_id
    (status_to_string v.status)
    (fun ppf -> function
      | Some t -> Format.fprintf ppf " (min_t=%d)" t
      | None -> ())
    v.min_t

(** Structured verdicts: what the service returns for each job.

    Wire format (one JSON object per line, same order as the jobs were
    submitted):

    {v
    {"id":"j1","check":"min-t","status":"pass","min_t":2,
     "nodes":131,"memo_hits":4}
    {"id":"j2","check":"linearizable","status":"violation","nodes":57,
     "memo_hits":0}
    {"id":"j3","status":"bad_job","error":"unknown spec \"typo\""}
    v}

    Every field except the wall-clock time is a deterministic function
    of the job (the engine is sequential per job), so serialized
    verdicts are byte-identical across pool sizes; [wall_ms] is only
    emitted when explicitly requested ([~stats:true], [elin batch
    --stats]). *)

type status =
  | Pass                (** the checked property holds *)
  | Violation           (** checked and refuted *)
  | Budget_exhausted    (** node budget ran out before a verdict *)
  | Timed_out           (** wall-clock timeout fired *)
  | Cancelled           (** cooperatively cancelled *)
  | Busy                (** admission refused: the service queue was
                            full (socket server, [--admission busy]) *)
  | Bad_job of string   (** unparseable job / history, unknown spec *)
  | Failed of string    (** the checker raised: the job is failed,
                            the pool lives on *)

type t = {
  job_id : string;
  seq : int;
  check : Job.check option;  (** [None] for unparseable job lines *)
  status : status;
  min_t : int option;        (** for [Min_t]/[Full] checks *)
  nodes : int;               (** DFS expansions (0 where meaningless) *)
  memo_hits : int;
  wall_ms : float;           (** service-side latency; excluded from
                                 canonical output *)
}

val status_to_string : status -> string

(** [to_json ?stats v] — canonical single-line object; [stats]
    (default false) appends the nondeterministic ["wall_ms"] field. *)
val to_json : ?stats:bool -> t -> Jsonl.t

val to_line : ?stats:bool -> t -> string

(** Parses what {!to_json} emits (used by tests and spool readers). *)
val of_json : seq:int -> Jsonl.t -> (t, string) result

val pp : Format.formatter -> t -> unit

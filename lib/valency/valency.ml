(** Valency analysis for two-process consensus protocols
    (Proposition 15's proof machinery, after FLP [7]).

    A protocol gives each process a programme over shared base objects
    that terminates with a decision.  We explore the full tree of
    interleavings (including every adversary branch of eventually
    linearizable base objects), compute each configuration's decision
    set, and:

    - check the consensus specification (agreement, validity,
      termination within the bound) — candidate protocols over
      registers and adversarial eventually-linearizable objects fail,
      exactly as Prop. 15 predicts, and the explorer exhibits the
      violating schedule;
    - locate *critical configurations* (multivalent, all successors
      univalent) and report which objects the two poised steps access —
      for a correct protocol (e.g. from compare&swap) the poised steps
      hit the same universal object; for register-only or
      register+eventually-linearizable protocols the analysis exhibits
      the commuting/indistinguishable continuations that power the
      proof's contradiction. *)

open Elin_spec
open Elin_runtime

type protocol = {
  name : string;
  bases : Base.t array;
  code : proc:int -> input:Value.t -> Value.t Program.t;
}

type pstate = Running of Value.t Program.t | Decided of Value.t

type config = {
  procs : pstate array;
  bases : Value.t array;
  steps : int;
}

let initial (p : protocol) ~inputs =
  {
    procs =
      Array.mapi (fun i input -> Running (p.code ~proc:i ~input)) inputs;
    bases = Array.map (fun (b : Base.t) -> b.Base.init) p.bases;
    steps = 0;
  }

let runnable c =
  List.filter
    (fun i -> match c.procs.(i) with Running _ -> true | Decided _ -> false)
    (List.init (Array.length c.procs) (fun i -> i))

let all_decided c = runnable c = []

(** [poised c i] — the base object process [i] is about to access, if
    its next step is an access. *)
let poised c i =
  match c.procs.(i) with
  | Running (Program.Access (obj, _, _)) -> Some obj
  | Running (Program.Return _) | Decided _ -> None

(** [step p c i] — all configurations after process [i]'s next atomic
    step (adversary branching included).  [?choices] short-circuits
    the [Base.access] enumeration; it must be exactly that
    enumeration (callers that already computed it for footprints or
    digest labels pass it back). *)
let step ?choices (p : protocol) c i =
  match c.procs.(i) with
  | Decided _ -> []
  | Running (Program.Return v) ->
    let procs = Array.copy c.procs in
    procs.(i) <- Decided v;
    [ { c with procs; steps = c.steps + 1 } ]
  | Running (Program.Access (obj, op, k)) ->
    let choices =
      match choices with
      | Some cs -> cs
      | None ->
        p.bases.(obj).Base.access ~state:c.bases.(obj) ~proc:i ~step:c.steps op
    in
    List.map
      (fun (resp, state') ->
        let procs = Array.copy c.procs in
        procs.(i) <- Running (k resp);
        let bases = Array.copy c.bases in
        bases.(obj) <- state';
        { procs; bases; steps = c.steps + 1 })
      choices

exception Truncated

(** [decision_set p c ~max_steps] — all decision vectors reachable from
    [c]; raises [Truncated] if some path does not decide within the
    bound (termination cannot be certified). *)
let decision_set (p : protocol) c ~max_steps =
  let acc = ref [] in
  let add d = if not (List.mem d !acc) then acc := d :: !acc in
  let rec dfs c =
    if all_decided c then
      add (Array.map (function Decided v -> v | Running _ -> assert false) c.procs)
    else if c.steps >= max_steps then raise Truncated
    else
      List.iter
        (fun i -> List.iter dfs (step p c i))
        (runnable c)
  in
  dfs c;
  !acc

type consensus_report = {
  decisions : Value.t array list;   (* distinct decision vectors *)
  agreement_violation : Value.t array option;
  validity_violation : Value.t array option;
  terminated : bool;
}

(** [check_consensus p ~inputs ~max_steps] — exhaustively verify the
    consensus specification on one input vector. *)
let check_consensus (p : protocol) ~inputs ~max_steps =
  match decision_set p (initial p ~inputs) ~max_steps with
  | exception Truncated ->
    { decisions = []; agreement_violation = None; validity_violation = None;
      terminated = false }
  | decisions ->
    let agreement_violation =
      List.find_opt
        (fun d -> Array.exists (fun v -> not (Value.equal v d.(0))) d)
        decisions
    in
    let validity_violation =
      List.find_opt
        (fun d ->
          Array.exists
            (fun v ->
              not (Array.exists (fun input -> Value.equal v input) inputs))
            d)
        decisions
    in
    { decisions; agreement_violation; validity_violation; terminated = true }

(* ------------------------------------------------------------------ *)
(* Valency tagging and critical configurations.                       *)
(* ------------------------------------------------------------------ *)

type valence =
  | Univalent of Value.t  (* all consensus decisions below equal this *)
  | Multivalent of Value.t list
  | Undetermined          (* truncated below: valence unknown *)

(** [valence p c ~max_steps] — for *agreement-correct* protocols, the
    decision value set below [c]. *)
let valence p c ~max_steps =
  match decision_set p c ~max_steps with
  | exception Truncated -> Undetermined
  | decisions ->
    let values =
      List.sort_uniq Value.compare (List.map (fun d -> d.(0)) decisions)
    in
    (match values with
    | [ v ] -> Univalent v
    | vs -> Multivalent vs)

type critical = {
  config : config;
  (* For each process: the object its poised step accesses (None for a
     decision step) and the valence after it moves. *)
  moves : (int option * valence) array;
}

(** [find_critical p ~inputs ~max_steps] — walk down from the root
    through multivalent children until reaching a configuration all of
    whose successors are univalent; [None] when the root is already
    univalent or valences are undetermined. *)
let find_critical (p : protocol) ~inputs ~max_steps =
  let rec descend c =
    match valence p c ~max_steps with
    | Univalent _ | Undetermined -> None
    | Multivalent _ ->
      let succs =
        List.concat_map
          (fun i ->
            List.map (fun c' -> (i, c')) (step p c i))
          (runnable c)
      in
      let multivalent_succ =
        List.find_map
          (fun (_, c') ->
            match valence p c' ~max_steps with
            | Multivalent _ -> Some c'
            | Univalent _ | Undetermined -> None)
          succs
      in
      (match multivalent_succ with
      | Some c' -> descend c'
      | None ->
        (* Every successor is univalent (or undetermined): critical. *)
        let moves =
          Array.of_list
            (List.map
               (fun i ->
                 let v =
                   match step p c i with
                   | c' :: _ -> valence p c' ~max_steps
                   | [] -> Undetermined
                 in
                 (poised c i, v))
               (runnable c))
        in
        Some { config = c; moves })
  in
  descend (initial p ~inputs)

(** [commute_check p c i j] — Prop. 15's commutation argument, checked
    concretely: when the poised steps of [i] and [j] touch different
    objects (or commute on the same object), stepping i;j and j;i must
    yield configurations with identical base states and programme
    continuations' behaviours — we compare their decision sets. *)
let commute_check p c i j ~max_steps =
  let after order =
    List.concat_map
      (fun c' -> step p c' (snd order))
      (step p c (fst order))
  in
  let ds cs =
    List.concat_map
      (fun c' ->
        match decision_set p c' ~max_steps with
        | ds -> ds
        | exception Truncated -> [])
      cs
  in
  let norm ds = List.sort_uniq compare (List.map Array.to_list ds) in
  (norm (ds (after (i, j))), norm (ds (after (j, i))))

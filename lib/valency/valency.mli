(** Valency analysis for two-process consensus protocols
    (Proposition 15's proof machinery, after FLP): exhaustive
    exploration of the interleaving tree (including every adversary
    branch of eventually linearizable base objects), consensus
    correctness checking, valence tagging and critical-configuration
    search. *)

open Elin_spec
open Elin_runtime

type protocol = {
  name : string;
  bases : Base.t array;
  code : proc:int -> input:Value.t -> Value.t Program.t;
      (** terminates with the process's decision *)
}

type pstate = Running of Value.t Program.t | Decided of Value.t

type config = {
  procs : pstate array;
  bases : Value.t array;
  steps : int;
}

val initial : protocol -> inputs:Value.t array -> config

val runnable : config -> int list
val all_decided : config -> bool

(** The base object process [i] is poised to access, if its next step
    is an access. *)
val poised : config -> int -> int option

(** All configurations after process [i]'s next atomic step. *)
val step :
  ?choices:(Value.t * Value.t) list -> protocol -> config -> int -> config list

exception Truncated

(** All decision vectors reachable from [c]; raises {!Truncated} if
    some path does not decide within the bound. *)
val decision_set : protocol -> config -> max_steps:int -> Value.t array list

type consensus_report = {
  decisions : Value.t array list;
  agreement_violation : Value.t array option;
  validity_violation : Value.t array option;
  terminated : bool;
}

(** Exhaustively verify the consensus specification on one input
    vector. *)
val check_consensus :
  protocol -> inputs:Value.t array -> max_steps:int -> consensus_report

type valence =
  | Univalent of Value.t
  | Multivalent of Value.t list
  | Undetermined  (** truncated below: valence unknown *)

val valence : protocol -> config -> max_steps:int -> valence

type critical = {
  config : config;
  moves : (int option * valence) array;
      (** per runnable process: poised object and post-move valence *)
}

(** Descend through multivalent children to a configuration all of
    whose successors are univalent. *)
val find_critical :
  protocol -> inputs:Value.t array -> max_steps:int -> critical option

(** The commutation argument, concretely: decision sets after stepping
    i;j vs j;i from [c] (normalized). *)
val commute_check :
  protocol ->
  config ->
  int ->
  int ->
  max_steps:int ->
  Value.t list list * Value.t list list

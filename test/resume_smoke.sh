# Kill-and-resume gate (make resume-smoke).
#
# One deterministic workload (the B6/B9 2x3 d22 fai/board run) is the
# reference; every scenario below must reach the byte-identical
# verdict and counts after stripping the volatile fields (wall clock
# and the spill/store block), or fail loudly:
#
#   1. spill+checkpoint, uninterrupted  -> counts == all-RAM reference
#   2. SIGKILL mid-level (exit 137), torn MANIFEST.*.tmp dropped in,
#      then --resume                    -> counts == reference
#   3. corrupt newest manifest          -> resume exits 2
#   4. corrupt a visited segment header -> resume exits 2
#   5. truncated frontier segment       -> resume exits 2
#
# 3-5 each start from a FRESH crashed directory: a resume that
# silently restarted from scratch would still produce the right
# counts, so the corruption gates are what prove resume actually
# reads the checkpoint.

set -u

ELIN="${ELIN:-./_build/default/bin/elin.exe}"
SCRATCH="${SCRATCH:-_build/resume-smoke}"

WL="mc -i fai/board --procs 2 --per-proc 3 --depth 22 \
  --engine sharded --domains 2 --json"
SPILL="--spill-hot 4096 --checkpoint-every 2"
CRASH_AT=6

fail() {
  echo "resume-smoke: $*" >&2
  exit 1
}

strip_volatile() {
  sed -e 's/"wall":[0-9.eE+-]*,\{0,1\}//g' \
      -e 's/"spill":"[^"]*",\{0,1\}//g' \
      -e 's/"resumed":[a-z]*,\{0,1\}//g' \
      -e 's/"resumed_from":[^,}]*,\{0,1\}//g' \
      -e 's/"store":{[^}]*},\{0,1\}//g' \
      -e 's/,}/}/g'
}

same_as_reference() {
  strip_volatile < "$1" > "$1.stripped"
  cmp -s "$SCRATCH/ref.stripped" "$1.stripped" || {
    diff "$SCRATCH/ref.stripped" "$1.stripped" >&2
    fail "$2: output differs from the all-RAM reference"
  }
}

crash_run() {
  $ELIN $WL $SPILL --spill "$1" --crash-after-checkpoint $CRASH_AT \
    > /dev/null 2>&1
  status=$?
  [ $status -eq 137 ] || fail "crash run ($1): expected exit 137 (SIGKILL), got $status"
  ls "$1"/MANIFEST.[0-9]* > /dev/null 2>&1 \
    || fail "crash run ($1): no committed manifest survived the kill"
  ls "$1"/visited-s*.seg > /dev/null 2>&1 \
    || fail "crash run ($1): no visited segments spilled before the kill"
}

newest_manifest() {
  ls "$1" | grep '^MANIFEST\.[0-9]*$' | sort -t. -k2 -n | tail -1
}

expect_resume_corrupt() {
  $ELIN mc --resume "$1" --json > /dev/null 2> "$1.err"
  status=$?
  [ $status -eq 2 ] || {
    cat "$1.err" >&2
    fail "$2: expected exit 2, got $status"
  }
}

rm -rf "$SCRATCH"
mkdir -p "$SCRATCH"

# Reference: the all-RAM run.
$ELIN $WL > "$SCRATCH/ref.json" || fail "reference run failed"
strip_volatile < "$SCRATCH/ref.json" > "$SCRATCH/ref.stripped"

# 1. Spill + checkpoints, uninterrupted.
$ELIN $WL $SPILL --spill "$SCRATCH/full" > "$SCRATCH/full.json" \
  || fail "uninterrupted spill run failed"
same_as_reference "$SCRATCH/full.json" "uninterrupted spill"

# 2. Kill mid-level, drop a torn manifest in, resume.
crash_run "$SCRATCH/crashed"
printf 'torn manifest garbage' > "$SCRATCH/crashed/MANIFEST.999.tmp"
$ELIN mc --resume "$SCRATCH/crashed" --json > "$SCRATCH/resumed.json" \
  || fail "resume after SIGKILL failed"
same_as_reference "$SCRATCH/resumed.json" "resume after SIGKILL"
grep -q '"resumed":true' "$SCRATCH/resumed.json" \
  || fail "resume did not report resumed:true"

# 3. Corrupt newest manifest: old state never silently wins over a
#    damaged committed manifest.
crash_run "$SCRATCH/bad-manifest"
m="$SCRATCH/bad-manifest/$(newest_manifest "$SCRATCH/bad-manifest")"
printf 'XXXXXXXX' | dd of="$m" bs=1 seek=4 conv=notrunc 2> /dev/null
expect_resume_corrupt "$SCRATCH/bad-manifest" "corrupt manifest"

# 4. Corrupt a visited segment header.
crash_run "$SCRATCH/bad-segment"
s=$(ls "$SCRATCH"/bad-segment/visited-s*.seg | head -1)
printf 'XXXX' | dd of="$s" bs=1 seek=12 conv=notrunc 2> /dev/null
expect_resume_corrupt "$SCRATCH/bad-segment" "corrupt visited segment"

# 5. Truncated frontier segment.
crash_run "$SCRATCH/bad-frontier"
f=$(ls "$SCRATCH"/bad-frontier/ckpt*-f*.seg | sort | tail -1)
sz=$(wc -c < "$f")
head -c $((sz - 100)) "$f" > "$f.cut" && mv "$f.cut" "$f"
expect_resume_corrupt "$SCRATCH/bad-frontier" "truncated frontier segment"

echo "resume-smoke OK"

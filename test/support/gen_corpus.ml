(** Regenerates the committed svc-smoke corpus
    ([test/support/corpus_50.jobs]).  Every job is a pure function of
    its seed, so the file is reproducible byte for byte:

    {v dune exec test/support/gen_corpus.exe > test/support/corpus_50.jobs v}

    The matching golden file is the pool's output over it:

    {v dune exec -- elin batch --domains 2 test/support/corpus_50.jobs \
         > test/support/corpus_50.verdicts.golden v}

    Mix: 45 jobs from 9 histories x 5 checker kinds (linearizable,
    eventually-linearizable, and corrupted shapes over the fai /
    register / queue zoo specs), 3 weak checks over pending-operation
    histories, and 2 node-budget=2 jobs whose searches must report
    budget_exhausted — so the committed batch exercises pass,
    violation, and budget verdicts, and `elin batch` exits 3 on it
    (Exhausted outranks Violation). *)

open Elin_spec
open Elin_history
open Elin_svc

let emit seq job = print_endline (Job.to_line { job with Job.seq })

let job ?budget ~id ~spec check text =
  {
    Job.id;
    seq = 0;
    spec;
    check;
    node_budget = budget;
    timeout_ms = None;
    history_text = text;
    trace = None;
    parent = None;
  }

let all_checks = [ Job.Linearizable; Job.T_lin 2; Job.Min_t; Job.Weak; Job.Full ]

(* [--telemetry-slow] emits the one-job corpus behind `make
   telemetry-smoke` ([test/support/telemetry_slow.jobs]): a depth-10
   unsatisfiable register history (10 pending writes racing a reader —
   refutation walks ~d! interleavings) against the load harness's
   ["elin.load.reg"] spec, bounded by a 5 s timeout.  Submitted to a
   draining server it pins a worker for seconds, which is exactly the
   window the smoke test needs to observe /healthz flip to 503. *)
let telemetry_slow () =
  let d = 10 in
  let events =
    List.init d (fun i -> Event.invoke ~proc:(i + 1) ~obj:0 (Op.write (i + 1)))
    @ List.concat_map
        (fun i ->
          [
            Event.invoke ~proc:0 ~obj:0 Op.read;
            Event.respond ~proc:0 ~obj:0 (Value.int (i + 1));
          ])
        (List.init d (fun i -> i))
    @ [
        Event.invoke ~proc:0 ~obj:0 Op.read;
        Event.respond ~proc:0 ~obj:0 (Value.int 1);
      ]
  in
  let text = Textio.to_string (History.of_events events) in
  emit 0
    { (job ~id:"slow-drain" ~spec:"elin.load.reg" Job.Linearizable text) with
      Job.timeout_ms = Some 5000;
    }

let () =
  if Array.exists (fun a -> a = "--telemetry-slow") Sys.argv then begin
    telemetry_slow ();
    exit 0
  end;
  let next = ref 0 in
  let out j =
    emit !next j;
    incr next
  in
  let spec_of = function
    | "fetch&increment" -> Faicounter.spec ()
    | "register" -> Register.spec ()
    | "queue" -> Fifo.spec ()
    | s -> invalid_arg s
  in
  let linear name seed =
    let rng = Elin_kernel.Prng.create seed in
    Textio.to_string
      (Gen.linearizable rng ~spec:(spec_of name) ~procs:2 ~n_ops:10 ())
  in
  let eventual name seed =
    let rng = Elin_kernel.Prng.create seed in
    Textio.to_string
      (fst
         (Gen.eventually_linearizable rng ~spec:(spec_of name) ~procs:2
            ~prefix_ops:3 ~suffix_ops:7 ()))
  in
  let corrupt name seed =
    let rng = Elin_kernel.Prng.create seed in
    let h = Gen.linearizable rng ~spec:(spec_of name) ~procs:2 ~n_ops:10 () in
    Textio.to_string
      (match Gen.corrupt rng h with Some h' -> h' | None -> h)
  in
  let pending name seed =
    let rng = Elin_kernel.Prng.create seed in
    Textio.to_string
      (Gen.linearizable_with_pending rng ~spec:(spec_of name) ~procs:3
         ~n_ops:9 ())
  in
  (* 9 histories x 5 checks = 45 *)
  let histories =
    [
      ("fai-lin-a", "fetch&increment", linear "fetch&increment" 1);
      ("fai-lin-b", "fetch&increment", linear "fetch&increment" 2);
      ("fai-lin-c", "fetch&increment", linear "fetch&increment" 3);
      ("fai-ev-a", "fetch&increment", eventual "fetch&increment" 4);
      ("fai-ev-b", "fetch&increment", eventual "fetch&increment" 5);
      ("reg-lin-a", "register", linear "register" 6);
      ("reg-lin-b", "register", linear "register" 7);
      ("queue-lin-a", "queue", linear "queue" 8);
      ("fai-corrupt-a", "fetch&increment", corrupt "fetch&increment" 9);
    ]
  in
  List.iter
    (fun (hname, spec, text) ->
      List.iter
        (fun check ->
          out
            (job
               ~id:(Printf.sprintf "%s/%s" hname (Job.check_to_string check))
               ~spec check text))
        all_checks)
    histories;
  (* 3 weak checks over pending-operation histories *)
  List.iter
    (fun seed ->
      out
        (job
           ~id:(Printf.sprintf "fai-pending-%d/weak" seed)
           ~spec:"fetch&increment" Job.Weak
           (pending "fetch&increment" seed)))
    [ 10; 11; 12 ];
  (* 2 jobs whose budget (2 nodes) cannot cover the search *)
  List.iter
    (fun check ->
      out
        (job ~budget:2
           ~id:
             (Printf.sprintf "fai-tight-budget/%s" (Job.check_to_string check))
           ~spec:"fetch&increment" check
           (linear "fetch&increment" 13)))
    [ Job.Linearizable; Job.Min_t ];
  assert (!next = 50)

(** Unit and stress tests for the bounded MPMC channel
    (Elin_kernel.Chan): FIFO order, capacity blocking, close
    semantics, and no lost or duplicated items under a 4x4
    producer/consumer load. *)

open Elin_kernel

let test_fifo () =
  let c = Chan.create ~capacity:4 () in
  Chan.put c 1;
  Chan.put c 2;
  Chan.put c 3;
  Alcotest.(check (option int)) "first" (Some 1) (Chan.take c);
  Alcotest.(check (option int)) "second" (Some 2) (Chan.take c);
  Alcotest.(check int) "length" 1 (Chan.length c);
  Alcotest.(check int) "capacity" 4 (Chan.capacity c)

let test_try_put () =
  let c = Chan.create ~capacity:2 () in
  Alcotest.(check bool) "fits" true (Chan.try_put c 1);
  Alcotest.(check bool) "fits" true (Chan.try_put c 2);
  Alcotest.(check bool) "full" false (Chan.try_put c 3);
  ignore (Chan.take c);
  Alcotest.(check bool) "fits again" true (Chan.try_put c 3)

let test_invalid_capacity () =
  Alcotest.check_raises "capacity 0" (Invalid_argument "Chan.create: capacity must be >= 1")
    (fun () -> ignore (Chan.create ~capacity:0 ()))

(* A producer past capacity must block until a consumer makes room. *)
let test_put_blocks_at_capacity () =
  let c = Chan.create ~capacity:2 () in
  Chan.put c 1;
  Chan.put c 2;
  let third_done = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Chan.put c 3;
        Atomic.set third_done true)
  in
  Unix.sleepf 0.05;
  Alcotest.(check bool) "third put still blocked" false
    (Atomic.get third_done);
  Alcotest.(check (option int)) "unblock" (Some 1) (Chan.take c);
  Domain.join d;
  Alcotest.(check bool) "third put completed" true (Atomic.get third_done);
  Alcotest.(check (option int)) "second" (Some 2) (Chan.take c);
  Alcotest.(check (option int)) "third" (Some 3) (Chan.take c)

let test_close_semantics () =
  let c = Chan.create ~capacity:4 () in
  Chan.put c 1;
  Chan.put c 2;
  Chan.close c;
  Alcotest.(check bool) "is_closed" true (Chan.is_closed c);
  Chan.close c (* idempotent *);
  Alcotest.check_raises "put after close" Chan.Closed (fun () ->
      Chan.put c 3);
  Alcotest.(check bool) "try_put after close is Closed too" true
    (try
       ignore (Chan.try_put c 3);
       false
     with Chan.Closed -> true);
  (* Takes drain what was enqueued, then report end-of-stream. *)
  Alcotest.(check (option int)) "drain 1" (Some 1) (Chan.take c);
  Alcotest.(check (option int)) "drain 2" (Some 2) (Chan.take c);
  Alcotest.(check (option int)) "drained" None (Chan.take c);
  Alcotest.(check (option int)) "still drained" None (Chan.take c)

(* A take blocked on an empty channel must wake when it closes. *)
let test_close_wakes_takers () =
  let c : int Chan.t = Chan.create ~capacity:2 () in
  let d = Domain.spawn (fun () -> Chan.take c) in
  Unix.sleepf 0.02;
  Chan.close c;
  Alcotest.(check (option int)) "taker woke with None" None (Domain.join d)

(* 4 producers x 4 consumers through a small channel: every item
   arrives exactly once, and the bounded capacity is never exceeded
   (enforced inside Chan; we check the multiset property here). *)
let test_stress_no_lost_no_dup () =
  let producers = 4 and consumers = 4 and per_producer = 1000 in
  let c = Chan.create ~capacity:8 () in
  let prods =
    Array.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per_producer - 1 do
              Chan.put c ((p * per_producer) + i)
            done))
  in
  let cons =
    Array.init consumers (fun _ ->
        Domain.spawn (fun () ->
            let rec go acc =
              match Chan.take c with
              | Some v -> go (v :: acc)
              | None -> acc
            in
            go []))
  in
  Array.iter Domain.join prods;
  Chan.close c;
  let received = Array.to_list cons |> List.concat_map Domain.join in
  let total = producers * per_producer in
  Alcotest.(check int) "count" total (List.length received);
  let sorted = List.sort compare received in
  Alcotest.(check (list int)) "each item exactly once"
    (List.init total (fun i -> i))
    sorted

let () =
  let quick = Elin_test_support.Support.quick in
  Alcotest.run "chan"
    [
      ( "chan",
        [
          quick "fifo order, length, capacity" test_fifo;
          quick "try_put honors capacity" test_try_put;
          quick "capacity must be positive" test_invalid_capacity;
          quick "put blocks at capacity" test_put_blocks_at_capacity;
          quick "close: puts raise, takes drain then None"
            test_close_semantics;
          quick "close wakes blocked takers" test_close_wakes_takers;
          quick "4x4 stress: no lost, no duplicated items"
            test_stress_no_lost_no_dup;
        ] );
    ]

(** Differential fuzzing of the decomposed checker ([Decompose])
    against the monolithic engine: verdict, [min_t], weak-consistency,
    and full-report equality on random multi-object histories at
    random cuts, budget self-consistency, gap-cut unit tests
    (including nondeterministic boundary-state threading), and
    [`Smart]-order verdict equivalence. *)

open Elin_spec
open Elin_history
open Elin_checker
open Elin_test_support
open Support

let fai = Faicounter.spec ()
let reg = Register.spec ()
let spec_of_obj o = if o mod 2 = 0 then reg else fai
let mono = Engine.config spec_of_obj
let wmono = Weak.config spec_of_obj
let dcfg = Decompose.config spec_of_obj

(* A random multi-object history over [spec_of] in one of four shapes:
   linearizable / pending / eventual / corrupted. *)
let random_mixed rng ~spec_of ~objs ~n_ops =
  match Elin_kernel.Prng.int rng 4 with
  | 0 -> Gen.mixed rng ~spec_of_obj:spec_of ~objs ~procs:3 ~n_ops ()
  | 1 -> Gen.mixed_with_pending rng ~spec_of_obj:spec_of ~objs ~procs:3 ~n_ops ()
  | 2 ->
    let per = max 1 (n_ops / (2 * objs)) in
    fst
      (Gen.mixed_eventual rng ~spec_of_obj:spec_of ~objs ~procs:2
         ~prefix_ops:per ~suffix_ops:per ())
  | _ -> (
    let h = Gen.mixed rng ~spec_of_obj:spec_of ~objs ~procs:3 ~n_ops () in
    match Gen.corrupt rng h with Some h' -> h' | None -> h)

let random_cut rng h = Elin_kernel.Prng.int rng (History.length h + 1)
let random_objs rng = 1 + Elin_kernel.Prng.int rng 3

(* --- decomposed = monolithic: verdicts at random cuts --- *)

let verdict_equality =
  Support.seeded_prop ~count:150 "decomposed = monolithic t-lin verdict"
    (fun rng ->
      let objs = random_objs rng in
      let h = random_mixed rng ~spec_of:spec_of_obj ~objs ~n_ops:6 in
      let t = random_cut rng h in
      Decompose.t_linearizable dcfg h ~t = Engine.t_linearizable mono h ~t)

(* --- decomposed min_t = monolithic min_t (exactly, not a bound) --- *)

let min_t_equality =
  Support.seeded_prop ~count:120 "decomposed min_t = monolithic min_t"
    (fun rng ->
      let objs = random_objs rng in
      let h = random_mixed rng ~spec_of:spec_of_obj ~objs ~n_ops:6 in
      Decompose.min_t dcfg h = Eventual.min_t mono h)

(* --- decomposed weak check finds the identical first violator --- *)

let weak_equality =
  Support.seeded_prop ~count:120 "decomposed weak = monolithic weak"
    (fun rng ->
      let objs = random_objs rng in
      let h = random_mixed rng ~spec_of:spec_of_obj ~objs ~n_ops:6 in
      match (Decompose.weak_check dcfg h, Weak.check wmono h) with
      | Ok (), Ok () -> true
      | Error a, Error b -> a.Operation.id = b.Operation.id
      | _ -> false)

(* --- full decomposed report = monolithic report (single-spec) --- *)

let report_fields_equal (a : Report.t) (b : Report.t) =
  a.events = b.events && a.operations = b.operations
  && a.complete = b.complete && a.pending = b.pending && a.procs = b.procs
  && a.objs = b.objs && a.concurrency = b.concurrency
  && a.linearizable = b.linearizable
  && a.weakly_consistent = b.weakly_consistent
  && a.violating_op = b.violating_op
  && a.min_t = b.min_t && a.witness = b.witness
  && a.budget_exhausted = b.budget_exhausted

let analyze_equality =
  Support.seeded_prop ~count:60 "decomposed analyze = Report.analyze"
    (fun rng ->
      let objs = random_objs rng in
      let h = random_mixed rng ~spec_of:(fun _ -> fai) ~objs ~n_ops:6 in
      let mono_r = Report.analyze fai h in
      let dec_r, _ = Decompose.analyze fai h in
      report_fields_equal mono_r dec_r)

(* --- budget self-consistency: a budgeted decomposed analysis never
   escapes with an exception, and when it completes within budget its
   verdicts equal the unbudgeted monolithic ones --- *)

let budget_consistency =
  Support.seeded_prop ~count:80 "budgeted decomposed analyze consistent"
    (fun rng ->
      let objs = random_objs rng in
      let h = random_mixed rng ~spec_of:(fun _ -> fai) ~objs ~n_ops:5 in
      let b = 1 + Elin_kernel.Prng.int rng 200 in
      let dec_r, _ = Decompose.analyze ~node_budget:b fai h in
      if dec_r.Report.budget_exhausted then true
      else report_fields_equal (Report.analyze fai h) dec_r)

(* --- gap cuts: nondeterministic boundary-state threading --- *)

(* Two overlapping writes (either order is a valid linearization),
   a gap, then a read: the segment composition must thread BOTH
   reachable states across the gap. *)
let overlap_writes_then_read v =
  h
    [
      inv 0 (Op.write 1); inv 1 (Op.write 2);
      res 0 Value.unit; res 1 Value.unit;
      inv 0 Op.read; resi 0 v;
    ]

let rdcfg = Decompose.for_spec reg
let rcfg = Engine.for_spec reg

let gap_state_sets () =
  List.iter
    (fun (v, expect) ->
      let hist = overlap_writes_then_read v in
      Alcotest.(check bool)
        (Printf.sprintf "read -> %d decomposed" v)
        expect
        (Decompose.linearizable rdcfg hist);
      Alcotest.(check bool)
        (Printf.sprintf "read -> %d matches monolithic" v)
        (Engine.linearizable rcfg hist)
        (Decompose.linearizable rdcfg hist))
    [ (1, true); (2, true); (0, false) ];
  (* The decomposition actually took the gap path. *)
  let _, st = Decompose.t_linearizable_stats rdcfg (overlap_writes_then_read 1) ~t:0 in
  Alcotest.(check bool) "gap segments used" true (st.Decompose.gap_segments >= 2)

let final_states_both () =
  let seg =
    h [ inv 0 (Op.write 1); inv 1 (Op.write 2); res 0 Value.unit; res 1 Value.unit ]
  in
  let states, v = Engine.final_states (Engine.prepare rcfg seg) in
  Alcotest.(check bool) "0-linearizable" true v.Engine.ok;
  Alcotest.(check int) "two boundary states" 2 (List.length states);
  Alcotest.(check bool) "states are {1, 2}" true
    (List.map (fun s -> s.(0)) states = [ Value.int 1; Value.int 2 ])

(* Pending operations may or may not take effect: both outcomes must
   survive the gap threading.  (A pending write keeps the operation
   open, so the real gap test is after it responds; here we check
   final_states directly.) *)
let final_states_pending () =
  let seg = h [ inv 0 (Op.write 7) ] in
  let states, v = Engine.final_states (Engine.prepare rcfg seg) in
  Alcotest.(check bool) "0-linearizable" true v.Engine.ok;
  Alcotest.(check bool) "dropped and placed states" true
    (List.map (fun s -> s.(0)) states = [ Value.int 0; Value.int 7 ])

(* --- register_family: the composed bound equals the monolithic one
   (Proposition 9 exercises divergence, so equality is informative) --- *)

let family_min_t_exact () =
  List.iter
    (fun k ->
      let hist = Locality.register_family k in
      let dec, _, st = Decompose.min_t_stats rdcfg hist in
      Alcotest.(check (option int))
        (Printf.sprintf "k=%d composed = monolithic" k)
        (Eventual.min_t rcfg hist) dec;
      Alcotest.(check (option int))
        (Printf.sprintf "k=%d exact value" k)
        (Some ((4 * (k - 1)) + 2))
        dec;
      Alcotest.(check int)
        (Printf.sprintf "k=%d sub-histories" k)
        k st.Decompose.objects)
    [ 1; 2; 3; 5 ]

let empty_history () =
  Alcotest.(check (option int)) "empty min_t" (Some 0)
    (Decompose.min_t dcfg History.empty);
  Alcotest.(check bool) "empty weak" true
    (Decompose.is_weakly_consistent dcfg History.empty);
  Alcotest.(check bool) "empty linearizable" true
    (Decompose.linearizable dcfg History.empty)

(* --- [`Smart] order decides the same predicate as [`History] --- *)

let smart_order_equiv =
  Support.seeded_prop ~count:150 "`Smart order = `History order" (fun rng ->
      let objs = random_objs rng in
      let h = random_mixed rng ~spec_of:spec_of_obj ~objs ~n_ops:6 in
      let t = random_cut rng h in
      let smart = Engine.config ~order:`Smart spec_of_obj in
      let p = Engine.prepare smart h in
      let hint = Array.make (max 1 (History.n_ops h)) 0 in
      let v1 = Engine.check_at ~hint p ~t in
      (* Same hint array threaded through a second run: the verdict is
         heuristic-independent. *)
      let v2 = Engine.check_at ~hint p ~t in
      v1.Engine.ok = Engine.t_linearizable mono h ~t
      && v2.Engine.ok = v1.Engine.ok)

let () =
  Alcotest.run "decompose"
    [
      ( "differential",
        [ verdict_equality; min_t_equality; weak_equality; analyze_equality ]
      );
      ("budget", [ budget_consistency ]);
      ( "gap cuts",
        [
          Support.quick "state-set threading" gap_state_sets;
          Support.quick "final_states both orders" final_states_both;
          Support.quick "final_states pending" final_states_pending;
        ] );
      ( "composition",
        [
          Support.quick "register_family exact" family_min_t_exact;
          Support.quick "empty history" empty_history;
        ] );
      ("smart order", [ smart_order_equiv ]);
    ]

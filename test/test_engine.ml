(** Tests for the generic linearizability engine (t = 0): classic
    textbook histories, pending-operation handling, nondeterministic
    types, multi-object histories, witnesses, budgets. *)

open Elin_spec
open Elin_history
open Elin_checker
open Elin_test_support
open Support

let reg = Register.spec ()
let rcfg = Engine.for_spec reg
let fai = Faicounter.spec ()
let fcfg = Engine.for_spec fai

let empty_history () =
  Alcotest.(check bool) "empty linearizable" true
    (Engine.linearizable rcfg (h []))

let sequential_legal () =
  Alcotest.(check bool) "legal sequential" true
    (Engine.linearizable rcfg
       (seq [ (Op.write 1, Value.unit); (Op.read, Value.int 1) ]))

let sequential_illegal () =
  Alcotest.(check bool) "stale sequential read" false
    (Engine.linearizable rcfg
       (seq [ (Op.write 1, Value.unit); (Op.read, Value.int 0) ]))

(* Herlihy–Wing's classic: overlapping write/read can be ordered
   either way. *)
let overlapping_either_order () =
  let hist =
    h [ inv 0 (Op.write 1); inv 1 Op.read; resi 1 1; res 0 Value.unit ]
  in
  Alcotest.(check bool) "read new value" true (Engine.linearizable rcfg hist);
  let hist =
    h [ inv 0 (Op.write 1); inv 1 Op.read; resi 1 0; res 0 Value.unit ]
  in
  Alcotest.(check bool) "read old value" true (Engine.linearizable rcfg hist)

let real_time_respected () =
  (* Write completes strictly before the read is invoked: the read must
     see it. *)
  let hist = h [ inv 0 (Op.write 1); res 0 Value.unit; inv 1 Op.read; resi 1 0 ] in
  Alcotest.(check bool) "stale read after write" false
    (Engine.linearizable rcfg hist)

let out_of_thin_air () =
  let hist = h [ inv 0 Op.read; resi 0 7 ] in
  Alcotest.(check bool) "value from nowhere" false
    (Engine.linearizable rcfg hist)

(* Pending operations: a pending write can justify a read. *)
let pending_write_takes_effect () =
  let hist = h [ inv 0 (Op.write 1); inv 1 Op.read; resi 1 1 ] in
  Alcotest.(check bool) "pending write may linearize" true
    (Engine.linearizable rcfg hist)

let pending_op_may_be_dropped () =
  let hist = h [ inv 0 (Op.write 1); inv 1 Op.read; resi 1 0 ] in
  Alcotest.(check bool) "pending write may be dropped" true
    (Engine.linearizable rcfg hist)

(* fetch&inc: duplicates and gaps. *)
let fai_duplicate_values () =
  let hist =
    h [ inv 0 Op.fetch_inc; inv 1 Op.fetch_inc; resi 0 0; resi 1 0 ]
  in
  Alcotest.(check bool) "duplicate fetch&inc results" false
    (Engine.linearizable fcfg hist)

let fai_gap_requires_pending () =
  (* A single completed op returning 1 needs another op in slot 0: a
     pending op can fill it... *)
  let hist = h [ inv 1 Op.fetch_inc; inv 0 Op.fetch_inc; resi 0 1 ] in
  Alcotest.(check bool) "pending fills the gap" true
    (Engine.linearizable fcfg hist);
  (* ... but with no pending op the gap is fatal. *)
  let hist = h [ inv 0 Op.fetch_inc; resi 0 1 ] in
  Alcotest.(check bool) "gap with no filler" false
    (Engine.linearizable fcfg hist)

(* Queue: the classic non-linearizable dequeue order. *)
let queue_order_violation () =
  let q = Fifo.spec () in
  let qcfg = Engine.for_spec q in
  let hist =
    h
      [
        inv 0 (Op.enq 1); res 0 Value.unit; inv 0 (Op.enq 2); res 0 Value.unit;
        inv 1 Op.deq; resi 1 2;
      ]
  in
  Alcotest.(check bool) "FIFO violated" false (Engine.linearizable qcfg hist);
  let hist =
    h
      [
        inv 0 (Op.enq 1); res 0 Value.unit; inv 0 (Op.enq 2); res 0 Value.unit;
        inv 1 Op.deq; resi 1 1;
      ]
  in
  Alcotest.(check bool) "FIFO respected" true (Engine.linearizable qcfg hist)

(* Nondeterministic type: any flip outcome is fine; states branch. *)
let nondeterministic_ok () =
  let coin = Nd_coin.spec () in
  let ccfg = Engine.for_spec coin in
  let hist =
    h [ inv 0 Nd_coin.flip; resi 0 1; inv 1 Nd_coin.flip; resi 1 0 ]
  in
  Alcotest.(check bool) "coin histories linearizable" true
    (Engine.linearizable ccfg hist);
  let hist = h [ inv 0 Nd_coin.flip; resi 0 2 ] in
  Alcotest.(check bool) "illegal coin value" false
    (Engine.linearizable ccfg hist)

(* Multi-object histories. *)
let multi_object () =
  let spec_of_obj = function
    | 0 -> reg
    | 1 -> fai
    | _ -> invalid_arg "unknown object"
  in
  let cfg = Engine.config spec_of_obj in
  let hist =
    h
      [
        inv ~obj:0 0 (Op.write 1); res ~obj:0 0 Value.unit;
        inv ~obj:1 1 Op.fetch_inc; res ~obj:1 1 (Value.int 0);
        inv ~obj:0 1 Op.read; res ~obj:0 1 (Value.int 1);
      ]
  in
  Alcotest.(check bool) "multi-object linearizable" true
    (Engine.linearizable cfg hist);
  let hist =
    h
      [
        inv ~obj:0 0 (Op.write 1); res ~obj:0 0 Value.unit;
        inv ~obj:0 1 Op.read; res ~obj:0 1 (Value.int 0);
        inv ~obj:1 1 Op.fetch_inc; res ~obj:1 1 (Value.int 0);
      ]
  in
  Alcotest.(check bool) "violation in one object dooms the whole" false
    (Engine.linearizable cfg hist)

(* Witness reconstruction. *)
let witness_is_legal () =
  let hist =
    h [ inv 0 (Op.write 1); inv 1 Op.read; resi 1 1; res 0 Value.unit ]
  in
  match Engine.witness rcfg hist ~t:0 with
  | None -> Alcotest.fail "expected witness"
  | Some w ->
    let behaviour = List.map (fun ((o : Operation.t), r) -> (o.Operation.op, r)) w in
    Alcotest.(check bool) "witness legal" true (Legal.is_legal reg behaviour);
    Alcotest.(check int) "witness covers completed ops" 2 (List.length w)

let witness_none_when_unlinearizable () =
  let hist = h [ inv 0 Op.read; resi 0 7 ] in
  Alcotest.(check bool) "no witness" true
    (Engine.witness rcfg hist ~t:0 = None)

(* Node budget. *)
let budget_respected () =
  let cfg = Engine.for_spec ~node_budget:1 fai in
  let hist = paper_fai_family 5 in
  Alcotest.(check bool) "budget raises" true
    (match Engine.t_linearizable cfg hist ~t:0 with
    | exception Engine.Budget_exceeded -> true
    | _ -> false)

(* Regression: witness must honor the node budget exactly like search
   (it used to explore the whole tree unbounded). *)
let witness_honors_budget () =
  let hist = paper_fai_family 5 in
  let cfg = Engine.for_spec ~node_budget:1 fai in
  Alcotest.(check bool) "search raises" true
    (match Engine.t_linearizable cfg hist ~t:0 with
    | exception Engine.Budget_exceeded -> true
    | _ -> false);
  Alcotest.(check bool) "witness raises on the same budget" true
    (match Engine.witness cfg hist ~t:0 with
    | exception Engine.Budget_exceeded -> true
    | _ -> false);
  (* Both run the identical tree: a budget covering search's
     exploration also covers witness reconstruction. *)
  let t = History.length hist in
  let nodes = (Engine.search fcfg hist ~t).Engine.nodes_explored in
  let cfg = Engine.for_spec ~node_budget:nodes fai in
  Alcotest.(check bool) "witness fits search's node count" true
    (Engine.witness cfg hist ~t <> None)

(* The unsatisfiable pending-writes family again, as a budget
   discriminator: within the memoized node count, a memoized witness
   search refutes cleanly while a memo-free one must blow the budget —
   so witness observably honors [memoize] too. *)
let witness_honors_memoize () =
  let k = 6 in
  let reg_k = Register.spec ~domain:(List.init k (fun i -> i + 1)) () in
  let events =
    List.init k (fun i -> inv (i + 1) (Op.write (i + 1)))
    @ List.concat_map
        (fun i -> [ inv 0 Op.read; resi 0 (i + 1) ])
        (List.init k (fun i -> i))
    @ [ inv 0 Op.read; resi 0 1 ]
  in
  let hist = h events in
  let memo_nodes =
    (Engine.search (Engine.for_spec reg_k) hist ~t:0).Engine.nodes_explored
  in
  let with_memo = Engine.for_spec ~node_budget:memo_nodes reg_k in
  Alcotest.(check bool) "memoized witness refutes within budget" true
    (Engine.witness with_memo hist ~t:0 = None);
  let no_memo = Engine.for_spec ~node_budget:memo_nodes ~memoize:false reg_k in
  Alcotest.(check bool) "memo-free witness exceeds the same budget" true
    (match Engine.witness no_memo hist ~t:0 with
    | exception Engine.Budget_exceeded -> true
    | _ -> false)

(* The two historically distinct budget exceptions are now one: a raise
   from the weak-consistency checker is caught by a handler naming the
   engine's exception (and by the kernel's). *)
let unified_budget_exception () =
  let hist = paper_fai_family 4 in
  let wcfg = Weak.for_spec ~node_budget:1 fai in
  Alcotest.(check bool) "Weak raise caught as Engine.Budget_exceeded" true
    (match Weak.is_weakly_consistent wcfg hist with
    | exception Engine.Budget_exceeded -> true
    | _ -> false);
  Alcotest.(check bool) "Weak raise caught as Budget.Exceeded" true
    (match Weak.is_weakly_consistent wcfg hist with
    | exception Elin_kernel.Budget.Exceeded -> true
    | _ -> false);
  Alcotest.(check bool) "Engine raise caught as Weak.Budget_exceeded" true
    (match
       Engine.t_linearizable (Engine.for_spec ~node_budget:1 fai) hist ~t:0
     with
    | exception Weak.Budget_exceeded -> true
    | _ -> false)

let memo_hits_counted () =
  let k = 6 in
  let reg_k = Register.spec ~domain:(List.init k (fun i -> i + 1)) () in
  let events =
    List.init k (fun i -> inv (i + 1) (Op.write (i + 1)))
    @ List.concat_map
        (fun i -> [ inv 0 Op.read; resi 0 (i + 1) ])
        (List.init k (fun i -> i))
    @ [ inv 0 Op.read; resi 0 1 ]
  in
  let hist = h events in
  let v = Engine.search (Engine.for_spec reg_k) hist ~t:0 in
  Alcotest.(check bool) "memo hits on refutation-heavy family" true
    (v.Engine.memo_hits > 0);
  let v' = Engine.search (Engine.for_spec ~memoize:false reg_k) hist ~t:0 in
  Alcotest.(check int) "no hits with memo off" 0 v'.Engine.memo_hits;
  Alcotest.(check bool) "memo explores strictly less" true
    (v.Engine.nodes_explored < v'.Engine.nodes_explored)

(* Property: generated linearizable histories always pass. *)
let generated_pass =
  Support.seeded_prop ~count:100 "generated histories linearizable" (fun rng ->
      let h = Gen.linearizable rng ~spec:fai ~procs:3 ~n_ops:7 () in
      Engine.linearizable fcfg h)

(* The adversarial refutation family from the A1 ablation: k concurrent
   pending writes and an unsatisfiable read sequence.  Exercises deep
   backtracking with memoization. *)
let pending_writes_refuted () =
  let k = 7 in
  let reg_k = Register.spec ~domain:(List.init k (fun i -> i + 1)) () in
  let events =
    List.init k (fun i -> inv (i + 1) (Op.write (i + 1)))
    @ List.concat_map
        (fun i -> [ inv 0 Op.read; resi 0 (i + 1) ])
        (List.init k (fun i -> i))
    @ [ inv 0 Op.read; resi 0 1 ]
  in
  let hist = h events in
  Alcotest.(check bool) "refuted" false
    (Engine.linearizable (Engine.for_spec reg_k) hist);
  (* The satisfiable variant (final read repeats the last value). *)
  let events_sat =
    List.init k (fun i -> inv (i + 1) (Op.write (i + 1)))
    @ List.concat_map
        (fun i -> [ inv 0 Op.read; resi 0 (i + 1) ])
        (List.init k (fun i -> i))
    @ [ inv 0 Op.read; resi 0 k ]
  in
  Alcotest.(check bool) "satisfiable variant accepted" true
    (Engine.linearizable (Engine.for_spec reg_k) (h events_sat))

(* Witness validity: whenever the engine accepts, its reconstructed
   witness satisfies all four Definition 2 conditions. *)
let witness_valid =
  Support.seeded_prop ~count:80 "witnesses satisfy Definition 2" (fun rng ->
      let h =
        match Elin_kernel.Prng.int rng 2 with
        | 0 -> Gen.linearizable rng ~spec:fai ~procs:3 ~n_ops:6 ()
        | _ ->
          fst
            (Gen.eventually_linearizable rng ~spec:fai ~procs:2 ~prefix_ops:2
               ~suffix_ops:3 ())
      in
      let t = Option.value ~default:0 (Eventual.min_t fcfg h) in
      match Engine.witness fcfg h ~t with
      | None -> false
      | Some w ->
        (* legal *)
        let behaviour =
          List.map (fun ((o : Operation.t), r) -> (o.Operation.op, r)) w
        in
        Legal.is_legal fai behaviour
        (* completed ops covered *)
        && List.for_all
             (fun (o : Operation.t) ->
               List.exists
                 (fun ((o' : Operation.t), _) -> o'.Operation.id = o.Operation.id)
                 w)
             (History.complete_ops h)
        (* responses after the cut preserved *)
        && List.for_all
             (fun ((o : Operation.t), r) ->
               match o.Operation.resp with
               | Some (v, ri) when ri >= t -> Value.equal v r
               | Some _ | None -> true)
             w
        (* real-time order among surviving pairs *)
        &&
        let pos id =
          let rec go i = function
            | [] -> None
            | ((o : Operation.t), _) :: rest ->
              if o.Operation.id = id then Some i else go (i + 1) rest
          in
          go 0 w
        in
        List.for_all
          (fun (o1 : Operation.t) ->
            match o1.Operation.resp with
            | Some (_, r1) when r1 >= t ->
              List.for_all
                (fun (o2 : Operation.t) ->
                  if o2.Operation.inv >= t && r1 < o2.Operation.inv then
                    match pos o1.Operation.id, pos o2.Operation.id with
                    | Some p1, Some p2 -> p1 < p2
                    | _, None -> true
                    | None, Some _ -> false
                  else true)
                (History.ops h)
            | Some _ | None -> true)
          (History.ops h))

let verdict_counts_nodes () =
  let hist = paper_fai_family 3 in
  let v = Engine.search fcfg hist ~t:0 in
  Alcotest.(check bool) "nodes counted" true (v.Engine.nodes_explored > 0);
  Alcotest.(check bool) "not linearizable" false v.Engine.ok

let () =
  Alcotest.run "engine"
    [
      ( "register",
        [
          Support.quick "empty" empty_history;
          Support.quick "sequential legal" sequential_legal;
          Support.quick "sequential illegal" sequential_illegal;
          Support.quick "overlap orders" overlapping_either_order;
          Support.quick "real time" real_time_respected;
          Support.quick "thin air" out_of_thin_air;
        ] );
      ( "pending",
        [
          Support.quick "pending write effects" pending_write_takes_effect;
          Support.quick "pending write dropped" pending_op_may_be_dropped;
        ] );
      ( "types",
        [
          Support.quick "fai duplicates" fai_duplicate_values;
          Support.quick "fai gaps" fai_gap_requires_pending;
          Support.quick "queue order" queue_order_violation;
          Support.quick "nondeterministic" nondeterministic_ok;
          Support.quick "multi-object" multi_object;
        ] );
      ( "witness",
        [
          Support.quick "legal witness" witness_is_legal;
          Support.quick "no witness" witness_none_when_unlinearizable;
        ] );
      ( "mechanics",
        [
          Support.quick "budget" budget_respected;
          Support.quick "witness honors budget" witness_honors_budget;
          Support.quick "witness honors memoize" witness_honors_memoize;
          Support.quick "unified budget exception" unified_budget_exception;
          Support.quick "memo hits" memo_hits_counted;
          Support.quick "verdict stats" verdict_counts_nodes;
          Support.quick "pending-writes family" pending_writes_refuted;
          generated_pass;
          witness_valid;
        ] );
    ]

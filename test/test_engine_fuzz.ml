(** Differential fuzzing of the rebuilt DFS engine.

    The engine is compared against two structurally independent
    deciders at randomized cuts — the brute-force [Oracle]
    (definitional ground truth, micro-histories only) and the
    Lemma-17 slot checker [Faic] (fetch&increment histories of any
    size) — plus fixed-seed min_t tables pinning the galloping search
    to plain binary search on the paper's E3/E16 families, and a
    randomized search/witness budget-parity property (both run the
    identical tree, so they must exhaust any budget together). *)

open Elin_spec
open Elin_history
open Elin_checker
open Elin_test_support

let fai = Faicounter.spec ()

(* A small random history: linearizable / pending / eventually
   linearizable / corrupted shape, over [spec]. *)
let random_history rng spec ~n_ops =
  match Elin_kernel.Prng.int rng 4 with
  | 0 -> Gen.linearizable rng ~spec ~procs:2 ~n_ops ()
  | 1 -> Gen.linearizable_with_pending rng ~spec ~procs:2 ~n_ops ()
  | 2 ->
    fst
      (Gen.eventually_linearizable rng ~spec ~procs:2
         ~prefix_ops:(n_ops / 2)
         ~suffix_ops:(n_ops - (n_ops / 2))
         ())
  | _ -> (
    let h = Gen.linearizable rng ~spec ~procs:2 ~n_ops () in
    match Gen.corrupt rng h with Some h' -> h' | None -> h)

let random_cut rng h = Elin_kernel.Prng.int rng (History.length h + 1)

(* --- engine vs brute-force Oracle, randomized cuts, three specs --- *)

let vs_oracle name spec =
  (* Oracle enumerates all orderings: keep histories micro. *)
  Support.seeded_prop ~count:120 (Printf.sprintf "engine = oracle (%s)" name)
    (fun rng ->
      let h = random_history rng spec ~n_ops:4 in
      let t = random_cut rng h in
      let engine = Engine.t_linearizable (Engine.for_spec spec) h ~t in
      let oracle = Oracle.t_linearizable (fun _ -> spec) h ~t in
      engine = oracle)

(* --- engine vs the Lemma-17 slot checker, randomized cuts --- *)

let vs_faic =
  Support.seeded_prop ~count:150 "engine = faic at random cuts" (fun rng ->
      let h = random_history rng fai ~n_ops:6 in
      let t = random_cut rng h in
      Engine.t_linearizable (Engine.for_spec fai) h ~t
      = Faic.t_linearizable h ~t)

(* --- galloping min_t = binary-search min_t --- *)

(* Plain binary search (the pre-galloping strategy), inlined so the
   suite does not depend on the optimized implementation under test. *)
let binary_min_t check ~len =
  if not (check len) then None
  else begin
    let lo = ref 0 and hi = ref len in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if check mid then hi := mid else lo := mid + 1
    done;
    Some !lo
  end

let min_t_opt = Alcotest.(option int)

(* Fixed-seed tables over the paper's two named families: E3 (the
   Proposition 9 register family — min_t grows with k) and E16 (the
   Serafini delayed-winner test&set family — min_t ~ history length). *)
let galloping_matches_binary_families () =
  List.iter
    (fun k ->
      let h = Locality.register_family k in
      let cfg = Engine.config (fun _ -> Register.spec ()) in
      let check t = Engine.t_linearizable cfg h ~t in
      let len = History.length h in
      Alcotest.check min_t_opt
        (Printf.sprintf "register_family %d" k)
        (binary_min_t check ~len)
        (Eventual.min_t_search check ~len))
    [ 1; 3; 5 ];
  let ts = Testandset.spec () in
  let cfg = Engine.for_spec ts in
  List.iter
    (fun n ->
      let h = Serafini.delayed_winner_family n in
      let check t = Engine.t_linearizable cfg h ~t in
      let len = History.length h in
      Alcotest.check min_t_opt
        (Printf.sprintf "delayed_winner_family %d" n)
        (binary_min_t check ~len)
        (Eventual.min_t_search check ~len))
    [ 2; 4; 6; 8 ]

(* Randomized: the two monotone searches agree on arbitrary histories,
   and min_t through the prepared path agrees with the one-shot path. *)
let galloping_matches_binary_random =
  Support.seeded_prop ~count:150 "galloping = binary min_t (random)"
    (fun rng ->
      let h = random_history rng fai ~n_ops:6 in
      let cfg = Engine.for_spec fai in
      let check t = Engine.t_linearizable cfg h ~t in
      let len = History.length h in
      Eventual.min_t_search check ~len = binary_min_t check ~len
      && Eventual.min_t cfg h
         = fst (Eventual.min_t_prepared (Engine.prepare cfg h)))

(* --- search/witness budget parity --- *)

let budget_parity =
  Support.seeded_prop ~count:150 "search and witness share budgets"
    (fun rng ->
      let h = random_history rng fai ~n_ops:5 in
      let t = random_cut rng h in
      let full = Engine.search (Engine.for_spec fai) h ~t in
      (* A budget drawn from [1, nodes + 1]: sometimes binding,
         sometimes not. *)
      let b = 1 + Elin_kernel.Prng.int rng (full.Engine.nodes_explored + 1) in
      let cfg = Engine.for_spec ~node_budget:b fai in
      let s =
        match Engine.search cfg h ~t with
        | v -> `Done v.Engine.ok
        | exception Engine.Budget_exceeded -> `Exceeded
      in
      let w =
        match Engine.witness cfg h ~t with
        | Some _ -> `Done true
        | None -> `Done false
        | exception Engine.Budget_exceeded -> `Exceeded
      in
      s = w)

let () =
  Alcotest.run "engine_fuzz"
    [
      ( "differential",
        [
          vs_oracle "fetch&increment" fai;
          vs_oracle "register" (Register.spec ());
          vs_oracle "queue" (Fifo.spec ());
          vs_faic;
        ] );
      ( "min_t",
        [
          Support.quick "galloping = binary on E3/E16 families"
            galloping_matches_binary_families;
          galloping_matches_binary_random;
        ] );
      ( "budget", [ budget_parity ] );
    ]

(** Unit and property tests for the kernel substrate: PRNG, bitsets,
    greedy interval matching. *)

open Elin_kernel
open Elin_test_support

let prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let xs = List.init 20 (fun _ -> Prng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Prng.int b 1_000_000) in
  Alcotest.(check bool) "different seeds differ" true (xs <> ys)

let prng_bounds =
  Support.qtest "int stays in bounds" QCheck2.Gen.(pair int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      let v = Prng.int rng bound in
      0 <= v && v < bound)

let prng_split () =
  let a = Prng.create 7 in
  let b = Prng.split a in
  let xs = List.init 10 (fun _ -> Prng.int a 1000) in
  let ys = List.init 10 (fun _ -> Prng.int b 1000) in
  Alcotest.(check bool) "split streams independent-ish" true (xs <> ys)

let prng_shuffle_permutes =
  Support.seeded_prop "shuffle permutes" (fun rng ->
      let xs = List.init 30 (fun i -> i) in
      let ys = Prng.shuffle rng xs in
      List.sort compare ys = xs)

let prng_choose_member =
  Support.seeded_prop "choose returns member" (fun rng ->
      let xs = [ 3; 1; 4; 1; 5; 9 ] in
      List.mem (Prng.choose rng xs) xs)

let prng_float_unit =
  Support.seeded_prop "float in [0,1)" (fun rng ->
      let f = Prng.float rng in
      0.0 <= f && f < 1.0)

(* --- Bitset --- *)

let bitset_empty () =
  let b = Bitset.empty 100 in
  Alcotest.(check int) "cardinal" 0 (Bitset.cardinal b);
  Alcotest.(check bool) "is_empty" true (Bitset.is_empty b);
  for i = 0 to 99 do
    Alcotest.(check bool) "not mem" false (Bitset.mem b i)
  done

let bitset_add_mem () =
  let b = Bitset.empty 130 in
  let b = Bitset.add b 0 in
  let b = Bitset.add b 61 in
  let b = Bitset.add b 62 in
  let b = Bitset.add b 129 in
  List.iter
    (fun i -> Alcotest.(check bool) (Printf.sprintf "mem %d" i) true (Bitset.mem b i))
    [ 0; 61; 62; 129 ];
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal b);
  Alcotest.(check bool) "not mem 63" false (Bitset.mem b 63)

let bitset_add_idempotent () =
  let b = Bitset.add (Bitset.empty 10) 3 in
  let b' = Bitset.add b 3 in
  Alcotest.(check bool) "physical equal on re-add" true (b == b')

let bitset_remove () =
  let b = Bitset.of_list 70 [ 1; 65; 3 ] in
  let b = Bitset.remove b 65 in
  Alcotest.(check bool) "removed" false (Bitset.mem b 65);
  Alcotest.(check (list int)) "rest" [ 1; 3 ] (Bitset.to_list b)

let bitset_immutable () =
  let b = Bitset.empty 10 in
  let b' = Bitset.add b 5 in
  Alcotest.(check bool) "original untouched" false (Bitset.mem b 5);
  Alcotest.(check bool) "copy has it" true (Bitset.mem b' 5)

let bitset_equal_hash =
  Support.seeded_prop "equal sets hash equal" (fun rng ->
      let xs = List.init 20 (fun _ -> Prng.int rng 90) in
      let a = Bitset.of_list 90 xs in
      let b = Bitset.of_list 90 (List.rev xs) in
      Bitset.equal a b && Bitset.hash a = Bitset.hash b)

let bitset_roundtrip =
  Support.seeded_prop "of_list/to_list roundtrip" (fun rng ->
      let xs = List.sort_uniq compare (List.init 15 (fun _ -> Prng.int rng 200)) in
      Bitset.to_list (Bitset.of_list 200 xs) = xs)

let bitset_full () =
  let b = Bitset.of_list 5 [ 0; 1; 2; 3; 4 ] in
  Alcotest.(check bool) "is_full" true (Bitset.is_full b);
  Alcotest.(check bool) "not full" false (Bitset.is_full (Bitset.remove b 2))

let bitset_out_of_range () =
  Alcotest.check_raises "mem out of width"
    (Invalid_argument "Bitset: index 10 out of width 10") (fun () ->
      ignore (Bitset.mem (Bitset.empty 10) 10))

(* --- Fingerprint --- *)

(* Zero/empty inputs must digest deterministically and stay told
   apart: absorbing nothing, a zero of each width, and an empty
   string/sequence are all distinct encodings. *)
let fingerprint_zero_empty () =
  let fp f = Fingerprint.finish (f (Fingerprint.start ())) in
  let nothing = fp Fun.id in
  Alcotest.(check bool) "empty digest deterministic" true
    (Fingerprint.equal nothing (fp Fun.id));
  let distinct =
    [
      ("nothing", nothing);
      ("byte 0", fp (fun a -> Fingerprint.byte a 0));
      ("int 0", fp (fun a -> Fingerprint.int a 0));
      ("string \"\\000\"", fp (fun a -> Fingerprint.string a "\000"));
      ("string \"\\000...\"", fp (fun a -> Fingerprint.string a "\000\000"));
    ]
  in
  List.iteri
    (fun i (ni, di) ->
      List.iteri
        (fun j (nj, dj) ->
          if i < j then
            Alcotest.(check bool)
              (Printf.sprintf "%s <> %s" ni nj)
              false (Fingerprint.equal di dj))
        distinct)
    distinct;
  (* The absorbers are an untyped byte stream (callers tag their
     encodings): [bool b] is literally [byte (if b then 1 else 0)],
     [int n] is [int64 (of_int n)], and an empty sequence — string,
     list, flat array — is exactly its absorbed 0-length prefix. *)
  let equal_classes =
    [
      ( "bool false = byte 0",
        fp (fun a -> Fingerprint.bool a false),
        fp (fun a -> Fingerprint.byte a 0) );
      ( "int 0 = int64 0",
        fp (fun a -> Fingerprint.int a 0),
        fp (fun a -> Fingerprint.int64 a 0L) );
      ( "empty string = int 0",
        fp (fun a -> Fingerprint.string a ""),
        fp (fun a -> Fingerprint.int a 0) );
      ( "empty list = int 0",
        fp (fun a -> Fingerprint.list Fingerprint.int a []),
        fp (fun a -> Fingerprint.int a 0) );
      ( "empty int_array = empty list",
        fp (fun a -> Fingerprint.int_array a [||]),
        fp (fun a -> Fingerprint.list Fingerprint.int a []) );
      ( "empty int64_array = empty list",
        fp (fun a -> Fingerprint.int64_array a [||]),
        fp (fun a -> Fingerprint.list Fingerprint.int a []) );
    ]
  in
  List.iter
    (fun (name, a, b) ->
      Alcotest.(check bool) name true (Fingerprint.equal a b))
    equal_classes;
  Alcotest.(check bool) "bool true <> bool false" false
    (Fingerprint.equal
       (fp (fun a -> Fingerprint.bool a true))
       (fp (fun a -> Fingerprint.bool a false)))

(* The flat-array absorbers are drop-in replacements for the closure
   folds they optimize. *)
let fingerprint_flat_absorbers =
  Support.seeded_prop "flat absorbers match folds" (fun rng ->
      let n = Prng.int rng 30 in
      let xs = Array.init n (fun _ -> Prng.int rng 1_000_000) in
      let ys = Array.map Int64.of_int xs in
      let fp f = Fingerprint.finish (f (Fingerprint.start ())) in
      Fingerprint.equal
        (fp (fun a -> Fingerprint.int_array a xs))
        (fp (fun a -> Fingerprint.array Fingerprint.int a xs))
      && Fingerprint.equal
           (fp (fun a -> Fingerprint.int64_array a ys))
           (fp (fun a -> Fingerprint.array Fingerprint.int64 a ys)))

(* Distinct seeds give distinct digest families; the same seed
   reproduces bit-identical digests. *)
let fingerprint_seeding () =
  let fp seed i =
    Fingerprint.finish (Fingerprint.int (Fingerprint.start ~seed ()) i)
  in
  for i = 0 to 99 do
    Alcotest.(check bool) "same seed reproduces" true
      (Fingerprint.equal (fp 0xabcdL i) (fp 0xabcdL i));
    Alcotest.(check bool) "distinct seeds differ" false
      (Fingerprint.equal (fp 0xabcdL i) (fp 0x1234L i))
  done

(* Seeded-collision smoke: 10^5 distinct short encodings, digested
   under two independent seeds — any same-family collision at this
   scale (expected ~ 3x10^-10) is a bug, and no pair may collide
   under both families at once. *)
let fingerprint_collision_smoke () =
  let n = 100_000 in
  let family seed =
    let tbl = Hashtbl.create (2 * n) in
    for i = 0 to n - 1 do
      let acc = Fingerprint.start ~seed () in
      let acc = Fingerprint.int (Fingerprint.byte acc (i land 0xff)) i in
      let d = Fingerprint.finish (Fingerprint.string acc (string_of_int i)) in
      (match Hashtbl.find_opt tbl d with
      | Some j ->
        Alcotest.failf "seed %Lx: encodings %d and %d collide on %s" seed j i
          (Fingerprint.to_hex d)
      | None -> ());
      Hashtbl.add tbl d i
    done;
    tbl
  in
  let a = family 0x6b65726eL in
  let b = family 0x736d6f6bL in
  Alcotest.(check int) "family sizes" (Hashtbl.length a) (Hashtbl.length b)

(* --- Striped_set --- *)

let striped_add_mem () =
  let s = Striped_set.create () in
  Alcotest.(check bool) "fresh add" true (Striped_set.add s 42L);
  Alcotest.(check bool) "re-add" false (Striped_set.add s 42L);
  Alcotest.(check bool) "mem" true (Striped_set.mem s 42L);
  Alcotest.(check bool) "not mem" false (Striped_set.mem s 43L);
  Alcotest.(check int) "cardinal" 1 (Striped_set.cardinal s);
  Striped_set.clear s;
  Alcotest.(check int) "cleared" 0 (Striped_set.cardinal s);
  Alcotest.(check bool) "add after clear" true (Striped_set.add s 42L)

let striped_stripes_pow2 () =
  List.iter
    (fun (req, got) ->
      Alcotest.(check int)
        (Printf.sprintf "stripes %d -> %d" req got)
        got
        (Striped_set.n_stripes (Striped_set.create ~stripes:req ())))
    [ (1, 1); (3, 4); (64, 64); (65, 128) ]

(* Growth past the per-stripe initial Hashtbl capacity (1024): a
   1-stripe set forced through many resizes must stay exact. *)
let striped_growth () =
  let s = Striped_set.create ~stripes:1 () in
  let n = 50_000 in
  for i = 0 to n - 1 do
    Alcotest.(check bool) "fresh" true (Striped_set.add s (Int64.of_int i))
  done;
  Alcotest.(check int) "cardinal after growth" n (Striped_set.cardinal s);
  for i = 0 to n - 1 do
    if not (Striped_set.mem s (Int64.of_int i)) then
      Alcotest.failf "lost %d after growth" i
  done;
  Alcotest.(check bool) "absent stays absent" false
    (Striped_set.mem s (Int64.of_int n))

(* The membership test and insert are one atomic action: when D
   domains race to add the same fingerprints, each fingerprint is won
   exactly once, whatever the interleaving.  Exercises both the
   same-stripe contention path (stripes:2) and concurrent resize
   (50k keys through 2 stripes). *)
let striped_concurrent_race () =
  let n_domains = 4 and n = 50_000 in
  let s = Striped_set.create ~stripes:2 () in
  let go = Atomic.make false in
  let worker () =
    while not (Atomic.get go) do
      Domain.cpu_relax ()
    done;
    let wins = ref 0 in
    for i = 0 to n - 1 do
      if Striped_set.add s (Int64.of_int i) then incr wins
    done;
    !wins
  in
  let domains = Array.init n_domains (fun _ -> Domain.spawn worker) in
  Atomic.set go true;
  let wins = Array.fold_left (fun t d -> t + Domain.join d) 0 domains in
  Alcotest.(check int) "every fingerprint won exactly once" n wins;
  Alcotest.(check int) "cardinal" n (Striped_set.cardinal s);
  for i = 0 to n - 1 do
    if not (Striped_set.mem s (Int64.of_int i)) then
      Alcotest.failf "fingerprint %d lost in the race" i
  done

(* The stripe index reads the {e mixed} low bits ({!Fingerprint.mix}),
   so fingerprint families with fixed raw low bits — e.g. everything a
   single {!Shard_set} owner receives — still disperse uniformly.
   Keying on raw bits (the aliasing bug this guards against) would put
   every multiple of 64 on stripe 0 of any <= 64-stripe set. *)
let striped_dispersion_fixed_low_bits () =
  let stripes = 16 in
  let n = 4096 in
  let counts = Array.make stripes 0 in
  for i = 0 to n - 1 do
    let fp = Int64.of_int (i * 64) (* raw low 6 bits all zero *) in
    let s = Int64.to_int (Fingerprint.mix fp) land (stripes - 1) in
    counts.(s) <- counts.(s) + 1
  done;
  let expect = n / stripes in
  Array.iteri
    (fun s c ->
      if c < expect / 2 || c > expect * 2 then
        Alcotest.failf "stripe %d holds %d of %d (uniform would be ~%d)" s c n
          expect)
    counts

(* cardinal/clear lock stripe by stripe, not globally: under a racing
   adder the observed counts are per-stripe snapshots — monotone
   between calls, bounded by the final population, exact once
   quiescent. *)
let striped_snapshot_under_adds () =
  let s = Striped_set.create ~stripes:4 () in
  let n = 20_000 in
  let go = Atomic.make false in
  let adder =
    Domain.spawn (fun () ->
        while not (Atomic.get go) do
          Domain.cpu_relax ()
        done;
        for i = 0 to n - 1 do
          ignore (Striped_set.add s (Int64.of_int i))
        done)
  in
  Atomic.set go true;
  let c1 = Striped_set.cardinal s in
  let c2 = Striped_set.cardinal s in
  if not (0 <= c1 && c1 <= c2 && c2 <= n) then
    Alcotest.failf "snapshots not monotone in-bounds: %d then %d" c1 c2;
  Domain.join adder;
  Alcotest.(check int) "quiescent cardinal" n (Striped_set.cardinal s)

(* clear racing adds: survivors are a subset of the added keys (adds
   that hit an already-cleared stripe stick, the rest are dropped);
   a second, quiescent clear observes empty and resets occupancy. *)
let striped_clear_under_adds () =
  let s = Striped_set.create ~stripes:4 () in
  let n = 20_000 in
  let adder =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          ignore (Striped_set.add s (Int64.of_int i))
        done)
  in
  Striped_set.clear s;
  Domain.join adder;
  let c = Striped_set.cardinal s in
  if c > n then Alcotest.failf "cardinal %d exceeds the %d adds" c n;
  Striped_set.clear s;
  Alcotest.(check int) "quiescent clear" 0 (Striped_set.cardinal s);
  Alcotest.(check int) "occupancy reset" 0 (Striped_set.occupancy s)

let striped_occupancy_reset () =
  Elin_obs.Metrics.enable ();
  Fun.protect ~finally:Elin_obs.Metrics.disable @@ fun () ->
  let s = Striped_set.create ~stripes:2 () in
  for i = 0 to 99 do
    ignore (Striped_set.add s (Int64.of_int i))
  done;
  ignore (Striped_set.add s 7L) (* duplicate: no occupancy bump *);
  Alcotest.(check int) "occupancy tracks inserts" 100 (Striped_set.occupancy s);
  Striped_set.clear s;
  Alcotest.(check int) "clear resets occupancy" 0 (Striped_set.occupancy s);
  ignore (Striped_set.add s 7L);
  Alcotest.(check int) "fresh count after clear" 1 (Striped_set.occupancy s)

(* --- Shard_set --- *)

let shard_add_mem () =
  let s = Shard_set.create ~shards:4 () in
  Alcotest.(check int) "shards" 4 (Shard_set.shards s);
  let fp = 0x123456789abcdefL in
  let sh = Shard_set.owner s fp in
  Alcotest.(check bool) "owner in range" true (sh >= 0 && sh < 4);
  Alcotest.(check int) "owner deterministic" sh (Shard_set.owner s fp);
  Alcotest.(check bool) "fresh add" true (Shard_set.add s ~shard:sh fp);
  Alcotest.(check bool) "re-add" false (Shard_set.add s ~shard:sh fp);
  Alcotest.(check bool) "mem" true (Shard_set.mem s ~shard:sh fp);
  Alcotest.(check int) "shard cardinal" 1 (Shard_set.shard_cardinal s sh);
  Alcotest.(check int) "cardinal" 1 (Shard_set.cardinal s)

let shard_owner_uniform () =
  let shards = 4 in
  let s = Shard_set.create ~shards () in
  let n = 4096 in
  let counts = Array.make shards 0 in
  for i = 0 to n - 1 do
    let o = Shard_set.owner s (Int64.of_int i) in
    counts.(o) <- counts.(o) + 1
  done;
  let expect = n / shards in
  Array.iteri
    (fun o c ->
      if c < expect / 2 || c > expect * 2 then
        Alcotest.failf "shard %d owns %d of %d (uniform would be ~%d)" o c n
          expect)
    counts

(* The two partitions read disjoint bit ranges of one mixed word: the
   fingerprints confined to a single owner shard still disperse
   uniformly across stripes.  This is the cross-structure half of the
   aliasing regression. *)
let shard_owner_keeps_stripes_uniform () =
  let ss = Shard_set.create ~shards:4 () in
  let stripes = 64 in
  let counts = Array.make stripes 0 in
  let owned = ref 0 and i = ref 0 in
  while !owned < 2048 do
    let fp = Int64.of_int !i in
    if Shard_set.owner ss fp = 0 then begin
      incr owned;
      let s = Int64.to_int (Fingerprint.mix fp) land (stripes - 1) in
      counts.(s) <- counts.(s) + 1
    end;
    incr i
  done;
  let expect = 2048 / stripes in
  Array.iteri
    (fun s c ->
      if c = 0 || c > 3 * expect then
        Alcotest.failf
          "stripe %d holds %d of one owner's 2048 fps (uniform would be ~%d)" s
          c expect)
    counts

(* The single-owner discipline across real domains: each domain adds
   only the fingerprints it owns, so the partition is exact and
   disjoint with no synchronization at all. *)
let shard_parallel_ownership () =
  let shards = 4 in
  let s = Shard_set.create ~shards () in
  let n = 20_000 in
  let worker d () =
    let mine = ref 0 in
    for i = 0 to n - 1 do
      let fp = Int64.of_int i in
      if Shard_set.owner s fp = d && Shard_set.add s ~shard:d fp then incr mine
    done;
    !mine
  in
  let ds = Array.init shards (fun d -> Domain.spawn (worker d)) in
  let total = Array.fold_left (fun t d -> t + Domain.join d) 0 ds in
  Alcotest.(check int) "disjoint exact partition" n total;
  Alcotest.(check int) "cardinal" n (Shard_set.cardinal s)

(* --- Spsc --- *)

let spsc_fifo () =
  let q = Spsc.create () in
  Alcotest.(check bool) "fresh empty" true (Spsc.is_empty q);
  Alcotest.(check (option int)) "pop empty" None (Spsc.pop q);
  for i = 0 to 99 do
    Spsc.push q i
  done;
  Alcotest.(check bool) "non-empty" false (Spsc.is_empty q);
  for i = 0 to 99 do
    Alcotest.(check (option int)) "fifo order" (Some i) (Spsc.pop q)
  done;
  Alcotest.(check (option int)) "drained" None (Spsc.pop q)

let spsc_cross_domain () =
  let q = Spsc.create () in
  let n = 100_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          Spsc.push q i
        done)
  in
  let expect = ref 0 in
  while !expect < n do
    match Spsc.pop q with
    | None -> Domain.cpu_relax ()
    | Some v ->
      if v <> !expect then
        Alcotest.failf "reordered: got %d, wanted %d" v !expect;
      incr expect
  done;
  Domain.join producer;
  Alcotest.(check (option int)) "drained" None (Spsc.pop q)

(* --- Barrier --- *)

let barrier_rounds () =
  let n = 4 and rounds = 50 in
  let b = Barrier.create n in
  Alcotest.(check int) "parties" n (Barrier.parties b);
  let counter = Atomic.make 0 in
  let worker () =
    for r = 1 to rounds do
      Atomic.incr counter;
      Barrier.await b;
      (* Between the two awaits of round [r] every party has bumped
         exactly [r] times and none has started round [r+1]. *)
      let c = Atomic.get counter in
      if c <> r * n then Alcotest.failf "round %d saw count %d" r c;
      Barrier.await b
    done
  in
  let ds = Array.init (n - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join ds;
  Alcotest.(check int) "all increments" (rounds * n) (Atomic.get counter)

let barrier_poison () =
  let b = Barrier.create 3 in
  Alcotest.(check bool) "fresh" false (Barrier.poisoned b);
  Barrier.poison b;
  Alcotest.(check bool) "flagged" true (Barrier.poisoned b);
  let raised () =
    match Barrier.await b with
    | () -> false
    | exception Barrier.Poisoned -> true
  in
  let ds = Array.init 2 (fun _ -> Domain.spawn raised) in
  let mine = raised () in
  Alcotest.(check bool) "await raises Poisoned everywhere" true
    (mine && Array.for_all Domain.join ds)

(* Poisoning while parties are blocked in [await] wakes them with
   [Poisoned] instead of deadlocking the incomplete round. *)
let barrier_poison_wakes_waiters () =
  let b = Barrier.create 3 in
  let waiter () =
    match Barrier.await b with
    | () -> false
    | exception Barrier.Poisoned -> true
  in
  let ds = Array.init 2 (fun _ -> Domain.spawn waiter) in
  (* Third party never arrives: poison instead. *)
  Barrier.poison b;
  Alcotest.(check bool) "blocked waiters raise Poisoned" true
    (Array.for_all Domain.join ds)

(* --- Matching --- *)

let matching_simple () =
  (* slots 0,2; fillers lb [0;0] -> feasible *)
  Alcotest.(check bool) "feasible" true
    (Matching.feasible ~slots:[ 0; 2 ] ~lower_bounds:[| 0; 0 |]);
  (* slot 0 but both fillers need >= 1 -> infeasible *)
  Alcotest.(check bool) "infeasible" false
    (Matching.feasible ~slots:[ 0 ] ~lower_bounds:[| 1; 1 |])

let matching_exact_assignment () =
  match Matching.assign ~slots:[ 1; 3; 5 ] ~lower_bounds:[| 4; 0; 2 |] with
  | None -> Alcotest.fail "expected assignment"
  | Some pairs ->
    (* Greedy: slot 1 <- filler lb 0 (idx 1); slot 3 <- lb 2 (idx 2);
       slot 5 <- lb 4 (idx 0). *)
    Alcotest.(check (list (pair int int))) "assignment"
      [ (1, 1); (3, 2); (5, 0) ]
      pairs

let matching_insufficient_fillers () =
  Alcotest.(check bool) "too few fillers" false
    (Matching.feasible ~slots:[ 0; 1; 2 ] ~lower_bounds:[| 0; 0 |])

let matching_hall_violation () =
  (* Two fillers both need slot >= 5 but slots are 1 and 6: slot 1
     unfillable. *)
  Alcotest.(check bool) "hall violation" false
    (Matching.feasible ~slots:[ 1; 6 ] ~lower_bounds:[| 5; 5 |])

(* Brute-force cross-check of the greedy matcher. *)
let matching_matches_bruteforce =
  Support.seeded_prop ~count:500 "greedy = brute force" (fun rng ->
      let n_slots = Prng.int rng 5 in
      let n_fillers = Prng.int rng 6 in
      let slots =
        List.sort_uniq compare (List.init n_slots (fun _ -> Prng.int rng 8))
      in
      let lbs = Array.init n_fillers (fun _ -> Prng.int rng 8) in
      let greedy = Matching.feasible ~slots ~lower_bounds:lbs in
      (* brute force: try all injections slots -> fillers *)
      let rec brute slots used =
        match slots with
        | [] -> true
        | s :: rest ->
          List.exists
            (fun f ->
              (not (List.mem f used)) && lbs.(f) <= s && brute rest (f :: used))
            (List.init n_fillers (fun f -> f))
      in
      greedy = brute slots [])

let () =
  Alcotest.run "kernel"
    [
      ( "prng",
        [
          Support.quick "deterministic" prng_deterministic;
          Support.quick "seed sensitivity" prng_seed_sensitivity;
          Support.quick "split" prng_split;
          prng_bounds;
          prng_shuffle_permutes;
          prng_choose_member;
          prng_float_unit;
        ] );
      ( "bitset",
        [
          Support.quick "empty" bitset_empty;
          Support.quick "add/mem across words" bitset_add_mem;
          Support.quick "add idempotent" bitset_add_idempotent;
          Support.quick "remove" bitset_remove;
          Support.quick "immutability" bitset_immutable;
          Support.quick "is_full" bitset_full;
          Support.quick "out of range" bitset_out_of_range;
          bitset_equal_hash;
          bitset_roundtrip;
        ] );
      ( "fingerprint",
        [
          Support.quick "zero/empty digests" fingerprint_zero_empty;
          fingerprint_flat_absorbers;
          Support.quick "seeding" fingerprint_seeding;
          Support.quick "collision smoke (10^5 x 2 seeds)"
            fingerprint_collision_smoke;
        ] );
      ( "striped_set",
        [
          Support.quick "add/mem/clear" striped_add_mem;
          Support.quick "stripe rounding" striped_stripes_pow2;
          Support.quick "growth past initial capacity" striped_growth;
          Support.quick "concurrent same-fingerprint race"
            striped_concurrent_race;
          Support.quick "dispersion with fixed raw low bits"
            striped_dispersion_fixed_low_bits;
          Support.quick "cardinal snapshots under concurrent adds"
            striped_snapshot_under_adds;
          Support.quick "clear under concurrent adds"
            striped_clear_under_adds;
          Support.quick "occupancy reset by clear" striped_occupancy_reset;
        ] );
      ( "shard_set",
        [
          Support.quick "add/mem/owner" shard_add_mem;
          Support.quick "owner dispersion" shard_owner_uniform;
          Support.quick "owner/stripe bit disjointness"
            shard_owner_keeps_stripes_uniform;
          Support.quick "parallel single-owner discipline"
            shard_parallel_ownership;
        ] );
      ( "spsc",
        [
          Support.quick "fifo" spsc_fifo;
          Support.quick "cross-domain handoff" spsc_cross_domain;
        ] );
      ( "barrier",
        [
          Support.quick "lock-step rounds" barrier_rounds;
          Support.quick "poison before await" barrier_poison;
          Support.quick "poison wakes blocked waiters"
            barrier_poison_wakes_waiters;
        ] );
      ( "matching",
        [
          Support.quick "simple" matching_simple;
          Support.quick "exact assignment" matching_exact_assignment;
          Support.quick "insufficient fillers" matching_insufficient_fillers;
          Support.quick "hall violation" matching_hall_violation;
          matching_matches_bruteforce;
        ] );
    ]

(** Experiment E3: locality of eventual linearizability (Lemmas 7–8,
    Proposition 9), including the paper's register-family
    counterexample showing why the object set must be finite. *)

open Elin_spec
open Elin_history
open Elin_checker
open Elin_test_support
open Support

let reg = Register.spec ()
let rcfg = Engine.for_spec reg
let wreg = Weak.for_spec reg

(* --- Lemma 7: composing per-object bounds --- *)

let per_object_bounds () =
  let hist = Locality.register_family 3 in
  let per = Locality.per_object_min_t rcfg hist in
  Alcotest.(check int) "three objects" 3 (List.length per);
  List.iter
    (fun (o, t) ->
      Alcotest.(check (option int))
        (Printf.sprintf "object %d stabilizes at 2" o)
        (Some 2) t)
    per

let composed_bound_sound () =
  let hist = Locality.register_family 3 in
  let per = Locality.per_object_min_t rcfg hist in
  match Locality.compose_min_t hist per with
  | None -> Alcotest.fail "expected a composed bound"
  | Some t ->
    Alcotest.(check bool) "composed bound t-linearizes H" true
      (Engine.t_linearizable rcfg hist ~t)

(* The paper's point: per-object min_t stays constant while the
   whole-history bound diverges linearly with the family size. *)
let family_bound_diverges () =
  let bound k =
    let hist = Locality.register_family k in
    match Eventual.min_t rcfg hist with
    | Some t -> t
    | None -> Alcotest.fail "family member must stabilize"
  in
  let b1 = bound 1 and b3 = bound 3 and b5 = bound 5 in
  Alcotest.(check bool) "strictly growing" true (b1 < b3 && b3 < b5);
  (* Exact values: the read of the last register must fall after the
     cut's write, so t must cover 4(k-1)+2 events. *)
  Alcotest.(check int) "k=1" 2 b1;
  Alcotest.(check int) "k=3" 10 b3;
  Alcotest.(check int) "k=5" 18 b5

(* Satellite of the decomposition work: per-object bounds stay FLAT
   (all exactly 2) across family sizes while the composed bound grows
   linearly — and the composed bound is exact, equal to the direct
   whole-history min_t for every k. *)
let family_flat_vs_composed () =
  List.iter
    (fun k ->
      let hist = Locality.register_family k in
      let per = Locality.per_object_min_t rcfg hist in
      List.iter
        (fun (o, t) ->
          Alcotest.(check (option int))
            (Printf.sprintf "k=%d object %d flat at 2" k o)
            (Some 2) t)
        per;
      let composed = Locality.compose_min_t hist per in
      Alcotest.(check (option int))
        (Printf.sprintf "k=%d composed grows linearly" k)
        (Some ((4 * (k - 1)) + 2))
        composed;
      Alcotest.(check (option int))
        (Printf.sprintf "k=%d composed = direct" k)
        (Eventual.min_t rcfg hist) composed)
    [ 1; 2; 4; 6 ]

let family_projections_stable () =
  let hist = Locality.register_family 5 in
  List.iter
    (fun o ->
      let v = Eventual.check_spec reg (History.proj_obj hist o) in
      Alcotest.(check bool)
        (Printf.sprintf "H|R%d eventually linearizable" o)
        true
        (Eventual.is_eventually_linearizable v))
    (History.objs hist)

(* --- Proposition 9 as a decision procedure --- *)

let local_decision_matches_direct =
  Support.seeded_prop ~count:30 "local = direct verdict" (fun rng ->
      (* Two-object history: object 0 honest, object 1 eventually
         linearizable shaped. *)
      let h0 = Gen.linearizable rng ~spec:reg ~procs:2 ~n_ops:3 () in
      let h1, _ =
        Gen.eventually_linearizable rng ~spec:reg ~procs:2 ~prefix_ops:2
          ~suffix_ops:2 ()
      in
      let relabel obj hist =
        List.map (fun (e : Event.t) -> { e with Event.obj }) (History.events hist)
      in
      let hist = History.of_events (relabel 0 h0 @ relabel 1 h1) in
      let local = Locality.eventually_linearizable_local rcfg wreg hist in
      let direct =
        {
          Eventual.weakly_consistent = Weak.is_weakly_consistent wreg hist;
          min_t = Eventual.min_t rcfg hist;
        }
      in
      (* The min_t bounds may differ (composition is an upper bound);
         existence and weak consistency must agree. *)
      Eventual.is_eventually_linearizable local
      = Eventual.is_eventually_linearizable direct)

let composed_bound_upper =
  Support.seeded_prop ~count:30 "composed bound dominates direct min_t"
    (fun rng ->
      let h0 = Gen.linearizable rng ~spec:reg ~procs:2 ~n_ops:3 () in
      let h1, _ =
        Gen.eventually_linearizable rng ~spec:reg ~procs:2 ~prefix_ops:2
          ~suffix_ops:2 ()
      in
      let relabel obj hist =
        List.map (fun (e : Event.t) -> { e with Event.obj }) (History.events hist)
      in
      let hist = History.of_events (relabel 0 h0 @ relabel 1 h1) in
      match
        ( Locality.compose_min_t hist (Locality.per_object_min_t rcfg hist),
          Eventual.min_t rcfg hist )
      with
      | Some composed, Some direct ->
        composed >= direct && Engine.t_linearizable rcfg hist ~t:composed
      | None, None -> true
      | Some _, None | None, Some _ -> false)

(* Three objects of three different types in one history. *)
let mixed_type_composition () =
  let reg = Register.spec () in
  let fai = Faicounter.spec () in
  let mreg = Maxreg.spec () in
  let spec_of = function
    | 0 -> reg
    | 1 -> fai
    | 2 -> mreg
    | _ -> invalid_arg "unknown object"
  in
  let cfg = Engine.config spec_of in
  let wcfg = Weak.config spec_of in
  (* Object 0 honest; object 1 carries a repaired-by-cut duplicate;
     object 2 honest. *)
  let hist =
    h
      [
        inv ~obj:1 0 Op.fetch_inc; res ~obj:1 0 (Value.int 0);
        inv ~obj:0 0 (Op.write 1); res ~obj:0 0 Value.unit;
        inv ~obj:1 1 Op.fetch_inc; res ~obj:1 1 (Value.int 0);
        inv ~obj:2 1 (Op.max_write 2); res ~obj:2 1 Value.unit;
        inv ~obj:2 0 Op.max_read; res ~obj:2 0 (Value.int 2);
        inv ~obj:0 1 Op.read; res ~obj:0 1 (Value.int 1);
      ]
  in
  let v = Locality.eventually_linearizable_local cfg wcfg hist in
  Alcotest.(check bool) "locally eventually linearizable" true
    (Eventual.is_eventually_linearizable v);
  (* The composed bound linearizes the whole history directly too. *)
  match v.Eventual.min_t with
  | Some t ->
    Alcotest.(check bool) "composed bound valid directly" true
      (Engine.t_linearizable cfg hist ~t)
  | None -> Alcotest.fail "expected a composed bound"

let compose_empty () =
  Alcotest.(check (option int)) "empty composition" (Some 0)
    (Locality.compose_min_t (h []) [])

let compose_missing_bound () =
  let hist = Locality.register_family 1 in
  Alcotest.(check (option int)) "missing per-object bound poisons" None
    (Locality.compose_min_t hist [ (0, None) ])

let () =
  Alcotest.run "locality"
    [
      ( "lemma 7",
        [
          Support.quick "per-object bounds" per_object_bounds;
          Support.quick "composed bound sound" composed_bound_sound;
          Support.quick "compose empty" compose_empty;
          Support.quick "compose missing" compose_missing_bound;
        ] );
      ( "proposition 9 counterexample",
        [
          Support.quick "whole-history bound diverges" family_bound_diverges;
          Support.quick "flat per-object vs linear composed"
            family_flat_vs_composed;
          Support.quick "projections stay stable" family_projections_stable;
        ] );
      ( "decision procedure",
        [
          local_decision_matches_direct;
          composed_bound_upper;
          Support.quick "mixed-type composition" mixed_type_composition;
        ] );
    ]

(** Tests for the parallel model-checking engine (lib/mc): determinism
    under parallelism (1/2/4 domains agree on state counts and on the
    lexicographically minimal counterexample), equivalence with the
    sequential [Explore] tree search, fingerprint collision smoke
    tests, dedup soundness (the reachable-history set is preserved),
    symmetry reduction, and the rewired users (valency analysis,
    Prop. 18 stability certificates). *)

open Elin_spec
open Elin_runtime
open Elin_explore
open Elin_checker
open Elin_mc
open Elin_test_support

let direct_fai () = Impl.of_spec (Faicounter.spec ())

let domain_counts = [ 1; 2; 4 ]

(* --- determinism under parallelism ------------------------------- *)

(* Trivial (communication-free) test&set: not linearizable — the
   engine must report the same two-winners counterexample whatever the
   domain count. *)
let tands_same_verdict_all_domains () =
  let impl = Elin_core.Ev_testandset.impl () in
  let wl = Run.uniform_workload Op.test_and_set ~procs:2 ~per_proc:1 in
  let cfg = Engine.for_spec (Testandset.spec ()) in
  let outs =
    List.map
      (fun domains ->
        Mc.check impl ~workloads:wl ~max_steps:12 ~domains (fun h ->
            Engine.linearizable cfg h))
      domain_counts
  in
  match outs with
  | first :: rest ->
    Alcotest.(check bool) "violation found" false first.Mc.ok;
    let cex =
      match first.Mc.counterexample with
      | Some h -> h
      | None -> Alcotest.fail "expected a counterexample"
    in
    Alcotest.(check bool) "counterexample violates" false
      (Engine.linearizable cfg cex);
    List.iteri
      (fun i out ->
        let name n = Printf.sprintf "%s (domains=%d)" n (List.nth domain_counts (i + 1)) in
        Alcotest.(check int) (name "states") first.Mc.stats.Search.states
          out.Mc.stats.Search.states;
        Alcotest.(check int) (name "leaves") first.Mc.stats.Search.leaves
          out.Mc.stats.Search.leaves;
        Alcotest.check Support.history (name "counterexample") cex
          (Option.get out.Mc.counterexample))
      rest
  | [] -> assert false

(* The minimal counterexample must also be minimal under the trace
   order, not merely some violation. *)
let tands_counterexample_is_minimal () =
  let impl = Elin_core.Ev_testandset.impl () in
  let wl = Run.uniform_workload Op.test_and_set ~procs:2 ~per_proc:1 in
  let cfg = Engine.for_spec (Testandset.spec ()) in
  let out =
    Mc.check impl ~workloads:wl ~max_steps:12 ~domains:2 (fun h ->
        Engine.linearizable cfg h)
  in
  let cex = Option.get out.Mc.counterexample in
  (* Collect every violating leaf by exhaustive enumeration and check
     none of equal-or-shallower depth precedes it lexicographically. *)
  let violations = ref [] in
  let _ =
    Explore.iter_leaves impl ~workloads:wl ~max_steps:12 (fun c ->
        let h = Explore.history c in
        if not (Engine.linearizable cfg h) then violations := h :: !violations)
  in
  Alcotest.(check bool) "explore also finds violations" true
    (!violations <> []);
  let min_len =
    List.fold_left
      (fun m h -> min m (Elin_history.History.length h))
      max_int !violations
  in
  let same_level =
    List.filter (fun h -> Elin_history.History.length h = min_len) !violations
  in
  (* BFS levels are steps, not events, but for this workload every
     leaf is a finished execution: the shallowest violating level
     contains exactly the shortest violating histories. *)
  List.iter
    (fun h ->
      Alcotest.(check bool) "lex-minimal among shallowest" true
        (Canon.compare_history cex h <= 0))
    same_level

(* The Figure-1 guard wrapped around the misbehaving board: engine
   verdict and state counts agree across domain counts, and with the
   sequential explorer's verdict. *)
let guard_agrees_with_explore () =
  let impl =
    Elin_core.Guard.wrap ~spec:(Faicounter.spec ()) (Impls.fai_ev_board ~k:8 ())
  in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:1 in
  let p h = Faic.t_linearizable h ~t:0 in
  let ok_explore, _, _ =
    Explore.for_all_histories impl ~workloads:wl ~max_steps:14 p
  in
  let outs =
    List.map
      (fun domains -> Mc.check impl ~workloads:wl ~max_steps:14 ~domains p)
      domain_counts
  in
  match outs with
  | first :: rest ->
    Alcotest.(check bool) "verdict matches explore" ok_explore first.Mc.ok;
    List.iter
      (fun out ->
        Alcotest.(check int) "states agree" first.Mc.stats.Search.states
          out.Mc.stats.Search.states;
        Alcotest.(check bool) "verdict agrees" first.Mc.ok out.Mc.ok;
        match first.Mc.counterexample, out.Mc.counterexample with
        | None, None -> ()
        | Some a, Some b -> Alcotest.check Support.history "same counterexample" a b
        | _ -> Alcotest.fail "counterexample presence differs")
      rest
  | [] -> assert false

(* --- equivalence with the sequential explorer -------------------- *)

(* With dedup and POR off, the BFS expands exactly the tree [Explore]
   walks. *)
let no_dedup_matches_explore_node_counts () =
  List.iter
    (fun (impl, per_proc, max_steps) ->
      let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc in
      let explore_stats =
        Explore.iter_leaves impl ~workloads:wl ~max_steps (fun _ -> ())
      in
      let stats =
        Mc.count_states impl ~workloads:wl ~max_steps ~domains:2 ~dedup:false
          ~por:false ()
      in
      Alcotest.(check int) "nodes" explore_stats.Explore.nodes
        stats.Search.states;
      Alcotest.(check int) "leaves" explore_stats.Explore.leaves
        stats.Search.leaves;
      Alcotest.(check int) "truncated" explore_stats.Explore.truncated
        stats.Search.cut)
    [
      (direct_fai (), 2, 16);
      (Impls.fai_from_board (), 1, 20);
      (Impls.fai_from_cas (), 2, 10) (* truncates: cut-leaf accounting *);
    ]

(* --- fingerprints ------------------------------------------------- *)

let fingerprint_collision_smoke () =
  let open Elin_kernel in
  let n = 100_000 in
  let seen = Hashtbl.create (2 * n) in
  let collisions = ref 0 in
  let record fp = if Hashtbl.mem seen fp then incr collisions else Hashtbl.add seen fp () in
  (* Distinct ints, pairs, and strings: ~3n distinct encodings. *)
  for i = 0 to n - 1 do
    record (Fingerprint.(finish (int (start ()) i)));
    record
      (Fingerprint.(finish (int (int (start ()) (i land 0xff)) (i lsr 8))));
    record (Fingerprint.(finish (string (start ()) (string_of_int i))))
  done;
  Alcotest.(check int) "no collisions" 0 !collisions

(* ~10^5 generated configurations: step through a real execution tree
   and fingerprint every node reached; distinct nodes (by canonical
   identity) must not collide.  We approximate "distinct" by the full
   history+state encoding differing, which holds for BFS nodes with
   dedup on: every kept node is new. *)
let fingerprint_distinct_configs () =
  let impl = Impls.fai_from_board () in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:3 in
  (* POR off throughout: this test characterizes the raw state space
     (the reduced tree is ~8x smaller and generates no duplicates). *)
  let stats =
    Mc.count_states impl ~workloads:wl ~max_steps:22 ~domains:1 ~por:false ()
  in
  (* With dedup on, [states] counts exactly the distinct fingerprints
     inserted; re-running without dedup must expand at least as many
     nodes — if distinct states collided, dedup would drop real states
     and [states] would fall short of the true distinct count. *)
  let stats_nodedup =
    Mc.count_states impl ~workloads:wl ~max_steps:22 ~domains:1 ~dedup:false
      ~por:false ()
  in
  Alcotest.(check bool) "scale reached (~10^5 configs)" true
    (stats_nodedup.Search.states >= 100_000);
  Alcotest.(check bool) "dedup found duplicates" true
    (stats.Search.dedup_hits > 0);
  (* Leaf-history sets agree (collision-freedom witness: a collision
     between distinct states would lose some reachable history). *)
  let hs_dedup, _ =
    Mc.leaf_histories impl ~workloads:wl ~max_steps:22 ~por:false ()
  in
  let hs_plain, _ =
    Mc.leaf_histories impl ~workloads:wl ~max_steps:22 ~dedup:false ~por:false
      ()
  in
  Alcotest.(check int) "history sets equal" 0
    (List.compare Canon.compare_history hs_dedup hs_plain)

(* --- dedup soundness --------------------------------------------- *)

let dedup_preserves_reachable_histories () =
  List.iter
    (fun (impl, per_proc, max_steps) ->
      let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc in
      let with_dedup, stats =
        Mc.leaf_histories impl ~workloads:wl ~max_steps ~por:false ()
      in
      let without, _ =
        Mc.leaf_histories impl ~workloads:wl ~max_steps ~dedup:false ~por:false
          ()
      in
      (* The engine's own two modes agree... *)
      Alcotest.(check int) "dedup on = off" 0
        (List.compare Canon.compare_history with_dedup without);
      (* ...and match the sequential explorer's reachable set. *)
      let explore_set = ref [] in
      let _ =
        Explore.iter_leaves impl ~workloads:wl ~max_steps (fun c ->
            explore_set := Explore.history c :: !explore_set)
      in
      let explore_set =
        List.sort_uniq Canon.compare_history !explore_set
      in
      Alcotest.(check int) "matches explore" 0
        (List.compare Canon.compare_history with_dedup explore_set);
      Alcotest.(check bool) "dedup did work" true
        (stats.Search.dedup_hits > 0))
    [ (Impls.fai_from_board (), 1, 20); (direct_fai (), 2, 16) ]

(* --- symmetry reduction ------------------------------------------ *)

let symmetry_reduces_and_preserves_verdict () =
  let impl = direct_fai () in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:2 in
  let plain = Mc.count_states impl ~workloads:wl ~max_steps:16 () in
  let sym = Mc.count_states impl ~workloads:wl ~max_steps:16 ~symmetry:true () in
  Alcotest.(check bool) "fewer states under symmetry" true
    (sym.Search.states < plain.Search.states);
  let out =
    Mc.check impl ~workloads:wl ~max_steps:16 ~symmetry:true (fun h ->
        Faic.t_linearizable h ~t:0)
  in
  Alcotest.(check bool) "linearizable (renaming-invariant predicate)" true
    out.Mc.ok

let symmetry_requires_identical_workloads () =
  let impl = direct_fai () in
  let wl = [| [ Op.fetch_inc ]; [ Op.fetch_inc; Op.fetch_inc ] |] in
  Alcotest.check_raises "asymmetric workloads rejected"
    (Invalid_argument "Mc: symmetry reduction requires identical workloads")
    (fun () ->
      ignore (Mc.count_states impl ~workloads:wl ~max_steps:8 ~symmetry:true ()))

(* --- partial-order reduction ------------------------------------- *)

(* The soundness gate: sleep-set POR must leave every observable —
   verdicts, reachable-history sets, and (under dedup) the explored
   state set itself — bit-identical, across domain counts.  Workloads
   cover write-heavy commuting accesses (board), a universal object
   (cas), the spec-direct implementation, and the adversarial
   eventually-linearizable board whose unstabilized accesses are
   step-sensitive (dependent with everything). *)
let por_preserves_histories () =
  List.iter
    (fun (impl, per_proc, max_steps) ->
      let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc in
      let base, base_stats =
        Mc.leaf_histories impl ~workloads:wl ~max_steps ~por:false ()
      in
      List.iter
        (fun domains ->
          List.iter
            (fun dedup ->
              let name n =
                Printf.sprintf "%s %s (domains=%d dedup=%b)" impl.Impl.name n
                  domains dedup
              in
              let hs, stats =
                Mc.leaf_histories impl ~workloads:wl ~max_steps ~domains ~dedup
                  ~por:true ()
              in
              Alcotest.(check int) (name "history sets equal") 0
                (List.compare Canon.compare_history base hs);
              (* Under dedup the reduction may only cut *redundant
                 generation* (dedup_hits): the distinct-state counts
                 are exactly those of the unreduced run. *)
              if dedup then begin
                Alcotest.(check int) (name "states")
                  base_stats.Search.states stats.Search.states;
                Alcotest.(check int) (name "kept") base_stats.Search.kept
                  stats.Search.kept;
                Alcotest.(check int) (name "leaves")
                  base_stats.Search.leaves stats.Search.leaves
              end)
            [ true; false ])
        domain_counts)
    [
      (Impls.fai_from_board (), 2, 16);
      (Impls.fai_from_cas (), 2, 10);
      (direct_fai (), 2, 14);
      (Impls.fai_ev_board ~k:2 (), 1, 14);
    ]

(* A failing predicate: the lex-minimal counterexample must survive
   the reduction unchanged (the violating history's state is still
   reached, at the same BFS level). *)
let por_preserves_counterexample () =
  let impl = Elin_core.Ev_testandset.impl () in
  let wl = Run.uniform_workload Op.test_and_set ~procs:2 ~per_proc:1 in
  let cfg = Engine.for_spec (Testandset.spec ()) in
  let p h = Engine.linearizable cfg h in
  let off = Mc.check impl ~workloads:wl ~max_steps:12 ~por:false p in
  Alcotest.(check bool) "violation found without por" false off.Mc.ok;
  List.iter
    (fun domains ->
      let on = Mc.check impl ~workloads:wl ~max_steps:12 ~domains ~por:true p in
      Alcotest.(check bool) "same verdict" off.Mc.ok on.Mc.ok;
      Alcotest.check Support.history "same lex-min counterexample"
        (Option.get off.Mc.counterexample)
        (Option.get on.Mc.counterexample))
    domain_counts

(* The perf gate (EXPERIMENTS.md §B6): in tree mode (no dedup) the
   reduction must cut the explored node count at least in half on the
   wait-free board fetch&inc.  On this workload sleep sets in fact
   achieve the perfect trace quotient: one tree node per distinct
   state — por-tree nodes = dedup distinct states, and under
   por+dedup nothing is left for dedup to catch. *)
let por_tree_reduction () =
  let impl = Impls.fai_from_board () in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:2 in
  let run ~dedup ~por =
    Mc.count_states impl ~workloads:wl ~max_steps:20 ~domains:2 ~dedup ~por ()
  in
  let tree = run ~dedup:false ~por:false in
  let por_tree = run ~dedup:false ~por:true in
  let dedup = run ~dedup:true ~por:false in
  let por_dedup = run ~dedup:true ~por:true in
  Alcotest.(check bool) ">= 2x fewer tree states" true
    (2 * por_tree.Search.states <= tree.Search.states);
  Alcotest.(check bool) "pruning counted" true (por_tree.Search.pruned > 0);
  Alcotest.(check int) "perfect trace quotient" dedup.Search.states
    por_tree.Search.states;
  Alcotest.(check int) "por+dedup states" dedup.Search.states
    por_dedup.Search.states;
  Alcotest.(check int) "por+dedup: nothing left to dedup" 0
    por_dedup.Search.dedup_hits;
  Alcotest.(check int) "pruned = old dedup hits" dedup.Search.dedup_hits
    por_dedup.Search.pruned

(* E9: the valency engine's decision sets and (dedup) state counts are
   por-invariant, for both a correct and a broken protocol. *)
let por_valency_gate () =
  let open Elin_valency in
  let inputs = [| Value.int 0; Value.int 1 |] in
  let cmp a b = List.compare Value.compare (Array.to_list a) (Array.to_list b) in
  let norm ds = List.sort_uniq cmp ds in
  let off =
    Mc_valency.check_consensus (Protocols.cas ()) ~inputs ~max_steps:20
      ~domains:1 ~por:false ()
  in
  List.iter
    (fun domains ->
      let on =
        Mc_valency.check_consensus (Protocols.cas ()) ~inputs ~max_steps:20
          ~domains ~por:true ()
      in
      let name n = Printf.sprintf "%s (domains=%d)" n domains in
      Alcotest.(check int) (name "decision sets equal") 0
        (List.compare cmp
           (norm off.Mc_valency.decisions)
           (norm on.Mc_valency.decisions));
      Alcotest.(check int) (name "states equal")
        off.Mc_valency.stats.Search.states on.Mc_valency.stats.Search.states;
      Alcotest.(check bool) (name "terminated") off.Mc_valency.terminated
        on.Mc_valency.terminated)
    domain_counts;
  let p = Protocols.registers_plus_ev_testandset ~stabilize_at:1000 () in
  let on = Mc_valency.check_consensus p ~inputs ~max_steps:30 ~por:true () in
  let off = Mc_valency.check_consensus p ~inputs ~max_steps:30 ~por:false () in
  Alcotest.(check bool) "por still finds disagreement" true
    (on.Mc_valency.agreement_violation <> None);
  Alcotest.(check int) "same decision sets on broken protocol" 0
    (List.compare cmp
       (norm off.Mc_valency.decisions)
       (norm on.Mc_valency.decisions));
  (* Threshold crossing: with a small stabilize-at the ev test&set
     flips from step-sensitive to stable mid-run, the regime where a
     valency decision step must NOT commute with a step-sensitive
     access (the decision still advances the global step counter).
     k = 3 stabilizes just before the adversary reaches the test&set
     (agreement holds), k = 4 just after (disagreement) — the
     reduction must agree with the full search on both sides. *)
  List.iter
    (fun k ->
      let p = Protocols.registers_plus_ev_testandset ~stabilize_at:k () in
      let on = Mc_valency.check_consensus p ~inputs ~max_steps:30 ~por:true () in
      let off =
        Mc_valency.check_consensus p ~inputs ~max_steps:30 ~por:false ()
      in
      let name n = Printf.sprintf "%s (stabilize_at=%d)" n k in
      Alcotest.(check int) (name "decision sets equal across threshold") 0
        (List.compare cmp
           (norm off.Mc_valency.decisions)
           (norm on.Mc_valency.decisions));
      Alcotest.(check bool) (name "terminated equal") off.Mc_valency.terminated
        on.Mc_valency.terminated;
      Alcotest.(check bool) (name "agreement verdict equal")
        (off.Mc_valency.agreement_violation = None)
        (on.Mc_valency.agreement_violation = None))
    [ 3; 4 ]

(* A step-sensitive access must stay dependent with a valency decision
   step: the decision still advances the global step counter, so
   commuting the two moves the access across the stabilization
   threshold and changes its enabled responses.  First the relation
   itself, then an end-to-end protocol where the pruning hole would
   lose a decision vector. *)
let por_decision_vs_step_sensitive () =
  let access ~sensitive =
    Indep.Access { obj = 0; writes = false; step_sensitive = sensitive }
  in
  Alcotest.(check bool) "Local dependent with step-sensitive access" false
    (Indep.independent Indep.Local (access ~sensitive:true));
  Alcotest.(check bool) "step-sensitive access dependent with Local" false
    (Indep.independent (access ~sensitive:true) Indep.Local);
  Alcotest.(check bool) "Local independent of stable access" true
    (Indep.independent Indep.Local (access ~sensitive:false));
  Alcotest.(check bool) "Local independent of Local" true
    (Indep.independent Indep.Local Indep.Local);
  Alcotest.(check bool) "Local independent of Log" true
    (Indep.independent Indep.Local Indep.Log);
  (* Step-oracle protocol: p0 decides its input immediately (a poised
     decision step from the root); p1 decides what it reads off a
     step-sensitive oracle — did its read land at step >= 1?
     Scheduling p1 before p0 decides yields (0, 0); after, (0, 1).
     Sleeping the decision step across the oracle read prunes the
     branch that decides (0, 0). *)
  let open Elin_valency in
  let oracle =
    {
      Base.name = "step-oracle";
      init = Value.unit;
      access = (fun ~state ~proc:_ ~step _ -> [ (Value.bool (step >= 1), state) ]);
      step_sensitive = (fun _ -> true);
    }
  in
  let p =
    {
      Valency.name = "step-oracle-race";
      bases = [| oracle |];
      code =
        (fun ~proc ~input ->
          if proc = 0 then Program.return input
          else
            let ( let* ) = Program.bind in
            let* late = Program.access 0 Op.read in
            Program.return (Value.int (if Value.to_bool late then 1 else 0)));
    }
  in
  let inputs = [| Value.int 0; Value.int 1 |] in
  let cmp a b = List.compare Value.compare (Array.to_list a) (Array.to_list b) in
  let norm ds = List.sort_uniq cmp ds in
  List.iter
    (fun dedup ->
      let on =
        Mc_valency.check_consensus p ~inputs ~max_steps:8 ~dedup ~por:true ()
      in
      let off =
        Mc_valency.check_consensus p ~inputs ~max_steps:8 ~dedup ~por:false ()
      in
      let name n = Printf.sprintf "%s (dedup=%b)" n dedup in
      Alcotest.(check int) (name "full search sees both decision vectors") 2
        (List.length (norm off.Mc_valency.decisions));
      Alcotest.(check int) (name "por preserves the decision set") 0
        (List.compare cmp
           (norm off.Mc_valency.decisions)
           (norm on.Mc_valency.decisions));
      Alcotest.(check bool) (name "terminated equal") off.Mc_valency.terminated
        on.Mc_valency.terminated)
    [ true; false ]

(* --- rewired users ----------------------------------------------- *)

let valency_mc_matches_dfs () =
  let open Elin_valency in
  let inputs = [| Value.int 0; Value.int 1 |] in
  let norm ds =
    List.sort_uniq
      (fun a b -> List.compare Value.compare (Array.to_list a) (Array.to_list b))
      ds
  in
  (* Correct protocol: same decision set, no violations, dedup hits.
     POR off here — under the reduction every duplicate generation is
     pruned at the source, so [dedup_hits] would be 0. *)
  let dfs = Valency.check_consensus (Protocols.cas ()) ~inputs ~max_steps:20 in
  List.iter
    (fun domains ->
      let mc =
        Mc_valency.check_consensus (Protocols.cas ()) ~inputs ~max_steps:20
          ~domains ~por:false ()
      in
      Alcotest.(check bool) "terminated" dfs.Valency.terminated
        mc.Mc_valency.terminated;
      Alcotest.(check int) "decision sets equal" 0
        (List.compare
           (fun a b ->
             List.compare Value.compare (Array.to_list a) (Array.to_list b))
           (norm dfs.Valency.decisions)
           (norm mc.Mc_valency.decisions));
      Alcotest.(check bool) "agreement holds" true
        (mc.Mc_valency.agreement_violation = None);
      Alcotest.(check bool) "dedup hit-rate > 0" true
        (mc.Mc_valency.stats.Search.dedup_hits > 0))
    domain_counts;
  (* Broken protocol: the ev-lin test&set disagreement is found. *)
  let p = Protocols.registers_plus_ev_testandset ~stabilize_at:1000 () in
  let dfs = Valency.check_consensus p ~inputs ~max_steps:30 in
  let mc = Mc_valency.check_consensus p ~inputs ~max_steps:30 ~domains:2 () in
  Alcotest.(check bool) "dfs finds disagreement" true
    (dfs.Valency.agreement_violation <> None);
  Alcotest.(check bool) "mc finds disagreement" true
    (mc.Mc_valency.agreement_violation <> None)

let stabilize_mc_engine_matches_dfs () =
  let check h ~t = Faic.t_linearizable h ~t in
  let impl = Impls.fai_ev_board ~k:1 () in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:8 in
  let via engine =
    Elin_core.Stabilize.construct ~engine impl ~workloads:wl ~depth:8 ~check ()
  in
  match
    ( via Elin_core.Stabilize.Dfs,
      via (Elin_core.Stabilize.Mc { domains = Some 2; dedup = true; por = true }),
      via
        (Elin_core.Stabilize.Mc { domains = Some 2; dedup = true; por = false })
    )
  with
  | Some dfs, Some mc, Some mc_nopor ->
    let open Elin_core.Stabilize in
    Alcotest.(check int) "same cut" dfs.certificate.cut mc.certificate.cut;
    Alcotest.(check int) "same v0" dfs.anchor.v0 mc.anchor.v0;
    Alcotest.(check bool) "same derived name" true
      (dfs.derived.Impl.name = mc.derived.Impl.name);
    Alcotest.(check int) "por invariant: cut" mc_nopor.certificate.cut
      mc.certificate.cut;
    Alcotest.(check int) "por invariant: leaves checked"
      mc_nopor.certificate.leaves_checked mc.certificate.leaves_checked;
    Alcotest.(check int) "por invariant: v0" mc_nopor.anchor.v0 mc.anchor.v0
  | _ -> Alcotest.fail "all engines must certify a stable configuration"

(* --- engine equivalence (barrier vs sharded) --------------------- *)

(* The sharded engine must reproduce the barrier engine bit for bit:
   every stats field except [per_domain]/[domains]/[wall], the
   verdict, and the lex-min counterexample, across engines x domain
   counts x por — including the Tag/merge path (por+dedup), where
   sleep-mask intersection happens at the owner instead of under a
   stripe lock. *)

let engines = [ Search.Barrier; Search.Sharded ]

let check_stats_equal name (a : Search.stats) (b : Search.stats) =
  let f fname v w = Alcotest.(check int) (name ^ " " ^ fname) v w in
  f "states" a.Search.states b.Search.states;
  f "dedup_hits" a.Search.dedup_hits b.Search.dedup_hits;
  f "kept" a.Search.kept b.Search.kept;
  f "pruned" a.Search.pruned b.Search.pruned;
  f "leaves" a.Search.leaves b.Search.leaves;
  f "cut" a.Search.cut b.Search.cut;
  f "levels" a.Search.levels b.Search.levels;
  f "frontier_peak" a.Search.frontier_peak b.Search.frontier_peak

(* Violating workload: verdict, counterexample and counts. *)
let sharded_same_verdict_and_counts () =
  let impl = Elin_core.Ev_testandset.impl () in
  let wl = Run.uniform_workload Op.test_and_set ~procs:2 ~per_proc:1 in
  let cfg = Engine.for_spec (Testandset.spec ()) in
  let p h = Engine.linearizable cfg h in
  List.iter
    (fun por ->
      let reference =
        Mc.check impl ~workloads:wl ~max_steps:12 ~engine:Search.Barrier
          ~domains:1 ~por p
      in
      Alcotest.(check bool) "violation found" false reference.Mc.ok;
      List.iter
        (fun engine ->
          List.iter
            (fun domains ->
              let name n =
                Printf.sprintf "%s (engine=%s domains=%d por=%b)" n
                  (Search.engine_to_string engine)
                  domains por
              in
              let out =
                Mc.check impl ~workloads:wl ~max_steps:12 ~engine ~domains ~por
                  p
              in
              Alcotest.(check bool) (name "ok") reference.Mc.ok out.Mc.ok;
              (match reference.Mc.counterexample, out.Mc.counterexample with
              | None, None -> ()
              | Some a, Some b ->
                Alcotest.check Support.history
                  (name "lex-min counterexample")
                  a b
              | _ -> Alcotest.fail (name "counterexample presence"));
              check_stats_equal (name "stats") reference.Mc.stats out.Mc.stats)
            domain_counts)
        engines)
    [ true; false ]

(* Exhaustive counts over the full dedup x por grid. *)
let sharded_same_counts_exhaustive () =
  let impl = Impls.fai_from_board () in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:2 in
  List.iter
    (fun (dedup, por) ->
      let reference =
        Mc.count_states impl ~workloads:wl ~max_steps:16 ~engine:Search.Barrier
          ~domains:1 ~dedup ~por ()
      in
      List.iter
        (fun engine ->
          List.iter
            (fun domains ->
              let name =
                Printf.sprintf "engine=%s domains=%d dedup=%b por=%b"
                  (Search.engine_to_string engine)
                  domains dedup por
              in
              let stats =
                Mc.count_states impl ~workloads:wl ~max_steps:16 ~engine
                  ~domains ~dedup ~por ()
              in
              check_stats_equal name reference stats)
            domain_counts)
        engines)
    [ (true, true); (true, false); (false, true); (false, false) ]

(* The valency rewiring: decision sets and consensus verdicts. *)
let sharded_valency_equivalence () =
  let open Elin_valency in
  let inputs = [| Value.int 0; Value.int 1 |] in
  let cmp a b =
    List.compare Value.compare (Array.to_list a) (Array.to_list b)
  in
  List.iter
    (fun (p, max_steps) ->
      let reference =
        Mc_valency.check_consensus p ~inputs ~max_steps ~engine:Search.Barrier
          ~domains:1 ()
      in
      List.iter
        (fun engine ->
          List.iter
            (fun domains ->
              let name n =
                Printf.sprintf "%s %s (engine=%s domains=%d)"
                  p.Valency.name n
                  (Search.engine_to_string engine)
                  domains
              in
              let r =
                Mc_valency.check_consensus p ~inputs ~max_steps ~engine
                  ~domains ()
              in
              Alcotest.(check int) (name "decision sets") 0
                (List.compare cmp reference.Mc_valency.decisions
                   r.Mc_valency.decisions);
              Alcotest.(check bool) (name "terminated")
                reference.Mc_valency.terminated r.Mc_valency.terminated;
              Alcotest.(check bool) (name "agreement violation")
                (reference.Mc_valency.agreement_violation <> None)
                (r.Mc_valency.agreement_violation <> None);
              check_stats_equal (name "stats") reference.Mc_valency.stats
                r.Mc_valency.stats)
            domain_counts)
        engines)
    [
      (Protocols.cas (), 20);
      (Protocols.registers_plus_ev_testandset ~stabilize_at:1000 (), 30);
    ]

let () =
  Alcotest.run "mc"
    [
      ( "determinism",
        [
          Support.quick "test&set verdict, 1/2/4 domains"
            tands_same_verdict_all_domains;
          Support.quick "counterexample lex-minimal"
            tands_counterexample_is_minimal;
          Support.quick "guard agrees with explore" guard_agrees_with_explore;
        ] );
      ( "equivalence",
        [
          Support.quick "no-dedup node counts" no_dedup_matches_explore_node_counts;
          Support.quick "dedup preserves histories"
            dedup_preserves_reachable_histories;
        ] );
      ( "fingerprints",
        [
          Support.quick "collision smoke (3x10^5 encodings)"
            fingerprint_collision_smoke;
          Support.slow "distinct configs at 10^5 scale"
            fingerprint_distinct_configs;
        ] );
      ( "symmetry",
        [
          Support.quick "reduces and preserves verdict"
            symmetry_reduces_and_preserves_verdict;
          Support.quick "requires identical workloads"
            symmetry_requires_identical_workloads;
        ] );
      ( "por",
        [
          Support.quick "preserves histories (domains x dedup)"
            por_preserves_histories;
          Support.quick "preserves lex-min counterexample"
            por_preserves_counterexample;
          Support.quick "tree reduction >= 2x" por_tree_reduction;
          Support.quick "valency gate" por_valency_gate;
          Support.quick "decision vs step-sensitive access"
            por_decision_vs_step_sensitive;
        ] );
      ( "engines",
        [
          Support.quick "verdict + counterexample (engines x domains x por)"
            sharded_same_verdict_and_counts;
          Support.quick "exhaustive counts (engines x domains x dedup x por)"
            sharded_same_counts_exhaustive;
          Support.quick "valency decision sets (engines x domains)"
            sharded_valency_equivalence;
        ] );
      ( "rewired users",
        [
          Support.quick "valency mc = dfs" valency_mc_matches_dfs;
          Support.quick "stabilize mc engine = dfs"
            stabilize_mc_engine_matches_dfs;
        ] );
    ]

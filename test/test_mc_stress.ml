(** Differential stress suite for the two parallel search engines
    (EXPERIMENTS.md gate; [make mc-stress]).

    Generates seeded random bounded state spaces — small per-level id
    ranges force genuine cross-path duplicates — and runs each through
    {!Search.bfs} under both engines at several domain counts,
    asserting bit-identical verdict lists and stats.  Two space
    flavours:

    - {b plain}: the fingerprint covers the whole state, dedup is
      first-wins (any copy is the same state) — the Plain/Immediate
      keep paths;
    - {b merge}: the fingerprint covers only [(depth, id)] while a
      [meta] bitmask rides along and duplicates are resolved by
      intersection at the level boundary — the Tag/[merge] path POR
      depends on.  [meta] feeds the leaf verdicts, so a merge applied
      in the wrong place or order shows up as a verdict diff, not just
      a count diff.

    Runs standalone under [dune runtest] (3 quick repeats) and as
    [test_mc_stress.exe --repeat N --domains 1,2,4 --seed S] from the
    Makefile. *)

module Prng = Elin_kernel.Prng
module Fp = Elin_kernel.Fingerprint
module Search = Elin_mc.Search

type state = { depth : int; id : int; meta : int }

(* Deterministic per-space hash: everything about the space's shape is
   a pure function of (space seed, depth, id). *)
let h ~seed ~depth ~id k =
  Int64.to_int
    (Int64.shift_right_logical
       (Fp.finish (Fp.int (Fp.int (Fp.int (Fp.start ~seed ()) depth) id) k))
       2)

type space = {
  seed : int64;
  max_depth : int;
  width : int;      (* ids per level: small => many duplicate states *)
  branching : int;  (* max children per state *)
  leaf_pct : int;   (* chance an interior state is a leaf, in % *)
}

let random_space rng =
  {
    seed = Int64.of_int (Prng.int rng 0x3FFFFFFF);
    max_depth = 8 + Prng.int rng 7;
    width = 40 + Prng.int rng 120;
    branching = 2 + Prng.int rng 4;
    leaf_pct = 5 + Prng.int rng 15;
  }

(* Children ids depend only on (depth, id); the child meta narrows the
   parent's (so merged metas stay merged down the tree). *)
let expand sp s =
  if s.depth >= sp.max_depth then Search.Cut (Some (s.depth, s.id, s.meta))
  else if h ~seed:sp.seed ~depth:s.depth ~id:s.id 0 mod 100 < sp.leaf_pct then
    Search.Leaf (Some (s.depth, s.id, s.meta))
  else begin
    let n = 1 + (h ~seed:sp.seed ~depth:s.depth ~id:s.id 1 mod sp.branching) in
    Search.Children
      (List.init n (fun k ->
           let hv = h ~seed:sp.seed ~depth:s.depth ~id:s.id (2 + k) in
           {
             depth = s.depth + 1;
             id = hv mod sp.width;
             meta = s.meta land lnot (1 lsl (hv mod 16));
           }))
  end

let fp_full sp s =
  Fp.finish
    (Fp.int (Fp.int (Fp.int (Fp.start ~seed:sp.seed ()) s.depth) s.id) s.meta)

let fp_shape sp s =
  Fp.finish (Fp.int (Fp.int (Fp.start ~seed:sp.seed ()) s.depth) s.id)

let merge_meta a b = { a with meta = a.meta land b.meta }

let root = { depth = 0; id = 0; meta = 0xFFFF }

let fail fmt = Printf.ksprintf (fun s -> raise (Failure s)) fmt

let check_equal ~what ~cfg (v0, (s0 : Search.stats)) (v1, (s1 : Search.stats))
    =
  if v0 <> v1 then
    fail "%s: verdict lists differ (%d vs %d verdicts) [%s]" what
      (List.length v0) (List.length v1) cfg;
  let field name a b =
    if a <> b then fail "%s: %s differs (%d vs %d) [%s]" what name a b cfg
  in
  field "states" s0.Search.states s1.Search.states;
  field "dedup_hits" s0.Search.dedup_hits s1.Search.dedup_hits;
  field "kept" s0.Search.kept s1.Search.kept;
  field "leaves" s0.Search.leaves s1.Search.leaves;
  field "cut" s0.Search.cut s1.Search.cut;
  field "levels" s0.Search.levels s1.Search.levels;
  field "frontier_peak" s0.Search.frontier_peak s1.Search.frontier_peak

let run_one sp ~engine ~domains ~dedup ~merge =
  let fingerprint, merge_fn =
    if merge then (fp_shape sp, Some merge_meta) else (fp_full sp, None)
  in
  Search.bfs ~engine ~domains ~dedup ~stop_early:false ?merge:merge_fn
    ~fingerprint ~expand:(expand sp) ~compare:Stdlib.compare root

let stress ~repeat ~domain_counts ~seed =
  let rng = Prng.create seed in
  let total = ref 0 in
  for r = 1 to repeat do
    let sp = random_space rng in
    (* (dedup, merge): plain tree, plain dedup, and the Tag/merge path. *)
    List.iter
      (fun (dedup, merge) ->
        let reference =
          run_one sp ~engine:Search.Barrier ~domains:1 ~dedup ~merge
        in
        total := !total + (snd reference).Search.states;
        List.iter
          (fun engine ->
            List.iter
              (fun domains ->
                let cfg =
                  Printf.sprintf
                    "repeat=%d seed=0x%Lx engine=%s domains=%d dedup=%b \
                     merge=%b"
                    r sp.seed
                    (Search.engine_to_string engine)
                    domains dedup merge
                in
                check_equal ~what:"engine differential" ~cfg reference
                  (run_one sp ~engine ~domains ~dedup ~merge))
              domain_counts)
          [ Search.Barrier; Search.Sharded ])
      [ (false, false); (true, false); (true, true) ]
  done;
  !total

let () =
  let repeat = ref 3 and domains = ref [ 1; 2; 4 ] and seed = ref 0x5eed in
  let rec parse = function
    | [] -> ()
    | "--repeat" :: n :: rest ->
      repeat := int_of_string n;
      parse rest
    | "--domains" :: ds :: rest ->
      domains := List.map int_of_string (String.split_on_char ',' ds);
      parse rest
    | "--seed" :: s :: rest ->
      seed := int_of_string s;
      parse rest
    | arg :: _ ->
      Printf.eprintf
        "usage: test_mc_stress [--repeat N] [--domains 1,2,4] [--seed S]\n\
         unknown argument %S\n"
        arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  match stress ~repeat:!repeat ~domain_counts:!domains ~seed:!seed with
  | total ->
    Printf.printf
      "mc-stress: OK — %d repeats x {tree, dedup, merge} x {barrier, \
       sharded} x domains [%s] agree (%d reference states)\n"
      !repeat
      (String.concat "; " (List.map string_of_int !domains))
      total
  | exception Failure msg ->
    Printf.eprintf "mc-stress: FAILED\n%s\n" msg;
    exit 1

(** Tests for the socket front-end (lib/net): framing round-trips and
    malformed-input containment, address parsing, loopback end-to-end
    equivalence with the in-process pool on the committed corpus,
    pipelined out-of-order completion, busy admission under a stalled
    worker, and graceful drain with no accepted job left unanswered. *)

open Elin_spec
open Elin_svc
open Elin_net
open Elin_test_support

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Framing                                                            *)
(* ------------------------------------------------------------------ *)

(* Drain every complete frame currently decodable. *)
let rec drain dec acc =
  match Frame.next dec with
  | `Frame p -> drain dec (p :: acc)
  | `Awaiting -> (List.rev acc, `Awaiting)
  | `Error e -> (List.rev acc, `Error e)

let test_frame_roundtrip_chunked =
  let gen =
    QCheck2.Gen.(
      pair
        (small_list (string_size ~gen:printable (int_bound 64)))
        (int_range 1 7))
  in
  Support.qtest ~count:300 "chunked frame round-trip" gen
    (fun (payloads, chunk) ->
      let wire = String.concat "" (List.map Frame.encode payloads) in
      let dec = Frame.decoder () in
      let out = ref [] in
      let i = ref 0 in
      let n = String.length wire in
      while !i < n do
        let len = min chunk (n - !i) in
        Frame.feed_string dec (String.sub wire !i len);
        i := !i + len;
        let frames, _ = drain dec [] in
        out := !out @ frames
      done;
      !out = payloads && Frame.pending dec = 0)

let test_frame_truncated () =
  let dec = Frame.decoder () in
  let wire = Frame.encode "hello world" in
  Frame.feed_string dec (String.sub wire 0 (String.length wire - 3));
  (match Frame.next dec with
  | `Awaiting -> ()
  | `Frame _ | `Error _ -> Alcotest.fail "truncated frame must await");
  Alcotest.(check bool) "bytes pending" true (Frame.pending dec > 0);
  (* The rest arrives: the frame completes. *)
  Frame.feed_string dec
    (String.sub wire (String.length wire - 3) 3);
  match Frame.next dec with
  | `Frame p -> Alcotest.(check string) "payload" "hello world" p
  | `Awaiting | `Error _ -> Alcotest.fail "completed frame must decode"

let test_frame_oversized_latches () =
  let dec = Frame.decoder ~max_frame:1024 () in
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 2048l;
  Frame.feed dec b 0 4;
  (match Frame.next dec with
  | `Error e ->
    Alcotest.(check bool) "mentions the limit" true (contains e "exceeds")
  | `Frame _ | `Awaiting -> Alcotest.fail "oversized length must error");
  (* Latched: more bytes (even a valid frame) never yield frames. *)
  Frame.feed_string dec (Frame.encode "ok");
  match Frame.next dec with
  | `Error _ -> ()
  | `Frame _ | `Awaiting -> Alcotest.fail "framing errors must latch"

let test_frame_garbage_never_crashes =
  let gen =
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_bound 256))
  in
  Support.qtest ~count:300 "garbage bytes never crash the decoder" gen
    (fun s ->
      let dec = Frame.decoder ~max_frame:4096 () in
      Frame.feed_string dec s;
      match drain dec [] with
      | _, (`Awaiting | `Error _) -> true)

let test_frame_huge_declared_length () =
  (* 0xFFFFFFFF as a length prefix: must be an error, not an
     allocation attempt. *)
  let dec = Frame.decoder () in
  Frame.feed_string dec "\xff\xff\xff\xff";
  match Frame.next dec with
  | `Error _ -> ()
  | `Frame _ | `Awaiting -> Alcotest.fail "4 GiB declared length must error"

(* ------------------------------------------------------------------ *)
(* Addresses                                                          *)
(* ------------------------------------------------------------------ *)

let test_addr_parse () =
  let ok s expect =
    match Addr.of_string s with
    | Ok a -> Alcotest.(check string) s expect (Addr.to_string a)
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  ok "unix:/tmp/x.sock" "unix:/tmp/x.sock";
  ok "/tmp/x.sock" "unix:/tmp/x.sock";
  ok "tcp:localhost:9000" "tcp:localhost:9000";
  ok "localhost:9000" "tcp:localhost:9000";
  ok "9000" "tcp:127.0.0.1:9000";
  (* Port 0 = "pick an ephemeral port"; the bound port is read back
     via Server.port / Telemetry.port. *)
  ok "tcp:localhost:0" "tcp:localhost:0";
  let err s =
    match Addr.of_string s with
    | Error _ -> ()
    | Ok a -> Alcotest.failf "%s parsed as %s" s (Addr.to_string a)
  in
  err "";
  err "tcp:localhost:notaport";
  err "tcp:localhost:70000";
  err "justaname"

let test_addr_roundtrip () =
  List.iter
    (fun a ->
      match Addr.of_string (Addr.to_string a) with
      | Ok b -> Alcotest.(check string) "round-trip" (Addr.to_string a)
                  (Addr.to_string b)
      | Error e -> Alcotest.fail e)
    [ Addr.Unix_sock "/tmp/y.sock"; Addr.Tcp ("127.0.0.1", 1); Addr.Tcp ("h", 65535) ]

(* ------------------------------------------------------------------ *)
(* Loopback servers                                                   *)
(* ------------------------------------------------------------------ *)

let fresh_sock =
  let k = ref 0 in
  fun () ->
    incr k;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "elin-test-net-%d-%d.sock" (Unix.getpid ()) !k)

let with_server ?domains ?queue_capacity ?resolve ?admission f =
  let path = fresh_sock () in
  let srv =
    Server.start ?domains ?queue_capacity ?resolve ?admission
      (Addr.Unix_sock path)
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f (Addr.Unix_sock path) srv)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | l -> go (l :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* ------------------------------------------------------------------ *)
(* E2E: socket verdicts = in-process verdicts on the corpus           *)
(* ------------------------------------------------------------------ *)

let test_corpus_equivalence () =
  let lines = read_lines "support/corpus_50.jobs" in
  let golden = read_lines "support/corpus_50.verdicts.golden" in
  List.iter
    (fun domains ->
      let local =
        List.map Verdict.to_line (Pool.run_lines ~domains lines)
      in
      Alcotest.(check (list string))
        (Printf.sprintf "local run matches golden (domains %d)" domains)
        golden local;
      let remote =
        with_server ~domains (fun addr _srv ->
            let jobs, bad =
              List.fold_left
                (fun (jobs, bad) item ->
                  match item with
                  | `Job j -> (j :: jobs, bad)
                  | `Bad v -> (jobs, v :: bad))
                ([], [])
                (Pool.parse_jobs lines)
            in
            let remote = Client.run_jobs addr (List.rev jobs) in
            List.sort
              (fun a b -> compare a.Verdict.seq b.Verdict.seq)
              (List.rev_append bad remote))
      in
      Alcotest.(check (list string))
        (Printf.sprintf "socket run matches golden (domains %d)" domains)
        golden
        (List.map Verdict.to_line remote))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Pipelining, admission, drain                                       *)
(* ------------------------------------------------------------------ *)

let fai = Faicounter.spec ()

let sample_history_text =
  "inv 0 0 fetch&inc\nres 0 0 0\ninv 1 0 fetch&inc\nres 1 0 1\n"

(* fai gated on a flag, with an entry counter so tests can wait until a
   worker is provably inside the job. *)
let gate_open = Atomic.make false
let gate_entered = Atomic.make 0

let gate_spec =
  Spec.make ~name:"gate" ~initial:(Spec.initial fai)
    ~apply:(fun q op ->
      Atomic.incr gate_entered;
      while not (Atomic.get gate_open) do
        Domain.cpu_relax ()
      done;
      Spec.apply fai q op)
    ~all_ops:(Spec.all_ops fai)

let resolve name =
  match name with
  | "gate" -> gate_spec
  | other -> Pool.default_resolve other

let job ~id ~spec =
  {
    Job.id;
    seq = 0;
    spec;
    check = Job.Linearizable;
    node_budget = None;
    timeout_ms = None;
    history_text = sample_history_text;
    trace = None;
    parent = None;
  }

let wait_for ?(timeout_s = 5.0) pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.yield ();
      Unix.sleepf 0.002;
      go ()
    end
  in
  go ()

let recv_verdict c =
  match Client.recv c with
  | `Verdict v -> v
  | `Eof -> Alcotest.fail "unexpected EOF"
  | `Error e -> Alcotest.failf "protocol error: %s" e

let test_pipelined_out_of_order () =
  Atomic.set gate_open false;
  Atomic.set gate_entered 0;
  with_server ~domains:2 ~resolve (fun addr _srv ->
      let c = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (* First job wedges a worker; the second, pipelined behind
             it, completes first. *)
          Client.send c (job ~id:"slow" ~spec:"gate");
          Alcotest.(check bool) "worker entered the gate" true
            (wait_for (fun () -> Atomic.get gate_entered > 0));
          Client.send c (job ~id:"fast" ~spec:"fetch&increment");
          let v1 = recv_verdict c in
          Alcotest.(check string) "fast overtakes slow" "fast" v1.Verdict.job_id;
          Atomic.set gate_open true;
          let v2 = recv_verdict c in
          Alcotest.(check string) "slow answers after the gate" "slow"
            v2.Verdict.job_id;
          Alcotest.(check bool) "fast verdict is a real check" true
            (v1.Verdict.status = Verdict.Pass)))

let test_busy_admission () =
  Atomic.set gate_open false;
  Atomic.set gate_entered 0;
  with_server ~domains:1 ~queue_capacity:1 ~resolve ~admission:Server.Busy
    (fun addr _srv ->
      let c = Client.connect addr in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set gate_open true;
          Client.close c)
        (fun () ->
          (* Wedge the only worker, then fill the 1-slot queue; the
             next job must be refused busy, immediately, while the
             worker is still stalled. *)
          Client.send c (job ~id:"wedge" ~spec:"gate");
          Alcotest.(check bool) "worker entered the gate" true
            (wait_for (fun () -> Atomic.get gate_entered > 0));
          Client.send c (job ~id:"queued" ~spec:"fetch&increment");
          (* The queued job may take an instant to move from the
             session reader into the channel; busy refusal is only
             guaranteed once the slot is held.  Keep offering until a
             busy verdict arrives (bounded by the job count). *)
          let rec offer i =
            if i > 50 then Alcotest.fail "no busy verdict after 50 offers";
            Client.send c (job ~id:(Printf.sprintf "b%d" i) ~spec:"fetch&increment");
            let v = recv_verdict c in
            if v.Verdict.status = Verdict.Busy then v else offer (i + 1)
          in
          let busy = offer 0 in
          Alcotest.(check bool) "busy id is one of the offers" true
            (String.length busy.Verdict.job_id > 1
            && busy.Verdict.job_id.[0] = 'b');
          (* Release: everything admitted still answers. *)
          Atomic.set gate_open true;
          let rec drain_until got =
            if List.mem "wedge" got && List.mem "queued" got then ()
            else
              let v = recv_verdict c in
              drain_until (v.Verdict.job_id :: got)
          in
          drain_until []))

let test_drain_answers_in_flight () =
  Atomic.set gate_open false;
  Atomic.set gate_entered 0;
  with_server ~domains:2 ~resolve (fun addr srv ->
      let c = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Client.send c (job ~id:"d0" ~spec:"gate");
          Client.send c (job ~id:"d1" ~spec:"gate");
          Alcotest.(check bool) "both workers inside jobs" true
            (wait_for (fun () -> Atomic.get gate_entered >= 2));
          (* Drain while both jobs are mid-flight: stop must block
             until they are answered and flushed, never dropping
             them. *)
          let stopper = Thread.create (fun () -> Server.stop srv) () in
          Unix.sleepf 0.05;
          Atomic.set gate_open true;
          let v1 = recv_verdict c in
          let v2 = recv_verdict c in
          let ids = List.sort compare [ v1.Verdict.job_id; v2.Verdict.job_id ] in
          Alcotest.(check (list string)) "both answered" [ "d0"; "d1" ] ids;
          (match Client.recv c with
          | `Eof -> ()
          | `Verdict _ -> Alcotest.fail "spurious verdict after drain"
          | `Error e -> Alcotest.failf "drain must end in EOF, got: %s" e);
          Thread.join stopper))

(* ------------------------------------------------------------------ *)
(* Trace-context propagation                                          *)
(* ------------------------------------------------------------------ *)

(* A trace id stamped on a job by the client must survive the server's
   internal "<cid>.<k>|<orig>" id rewriting: verdicts come back under
   the original id, and both the server-side net.job span and the
   worker-side svc.job span carry the id in their "trace" arg — that
   is what lets [elin trace merge] stitch the processes together. *)
let test_trace_id_roundtrip () =
  let module Trace = Elin_obs.Trace in
  let ids = List.init 4 (fun i -> Printf.sprintf "rt%d" i) in
  let trace_of id = "trace-" ^ id in
  Trace.clear ();
  Trace.enable ();
  let verdicts = ref [] in
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.clear ())
    (fun () ->
      with_server ~domains:2 (fun addr _srv ->
          let jobs =
            List.map
              (fun id ->
                { (job ~id ~spec:"fetch&increment") with
                  Job.trace = Some (trace_of id);
                })
              ids
          in
          verdicts := Client.run_jobs addr jobs);
      (* with_server has stopped the server: worker domains are joined,
         so walking the trace buffers is safe. *)
      let got =
        List.sort compare (List.map (fun v -> v.Verdict.job_id) !verdicts)
      in
      Alcotest.(check (list string))
        "verdicts return under the original ids" ids got;
      let evs = Trace.events () in
      let traces_on span_name =
        List.filter_map
          (fun (e : Trace.event) ->
            if e.Trace.name <> span_name then None
            else
              match List.assoc_opt "trace" e.Trace.args with
              | Some (Elin_obs.Jsonl.Str t) -> Some t
              | _ -> None)
          evs
        |> List.sort_uniq compare
      in
      List.iter
        (fun span_name ->
          Alcotest.(check (list string))
            (span_name ^ " spans carry every submitted trace id")
            (List.map trace_of ids) (traces_on span_name))
        [ "net.job"; "svc.job" ];
      (* No span leaks the internal rewritten id into its trace arg. *)
      List.iter
        (fun t ->
          Alcotest.(check bool) "trace arg is never an internal id" false
            (String.contains t '|'))
        (traces_on "net.job" @ traces_on "svc.job"))

let test_malformed_payload_is_bad_job () =
  with_server ~domains:1 (fun addr _srv ->
      let c = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Client.send_raw c "this is not json";
          let v = recv_verdict c in
          Alcotest.(check bool) "bad_job verdict" true
            (match v.Verdict.status with
            | Verdict.Bad_job _ -> true
            | _ -> false);
          (* Session survives: a real job still answers. *)
          Client.send c (job ~id:"after" ~spec:"fetch&increment");
          let v2 = recv_verdict c in
          Alcotest.(check string) "session continues" "after"
            v2.Verdict.job_id))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "net"
    [
      ( "frame",
        [
          test_frame_roundtrip_chunked;
          Support.quick "truncated frame awaits, then completes"
            test_frame_truncated;
          Support.quick "oversized length latches an error"
            test_frame_oversized_latches;
          test_frame_garbage_never_crashes;
          Support.quick "4 GiB declared length" test_frame_huge_declared_length;
        ] );
      ( "addr",
        [
          Support.quick "textual forms" test_addr_parse;
          Support.quick "canonical round-trip" test_addr_roundtrip;
        ] );
      ( "e2e",
        [
          Support.quick "corpus verdicts equal local pool (domains 1/2/4)"
            test_corpus_equivalence;
        ] );
      ( "session",
        [
          Support.quick "pipelined jobs complete out of order"
            test_pipelined_out_of_order;
          Support.quick "busy admission under a stalled worker"
            test_busy_admission;
          Support.quick "drain answers every in-flight job"
            test_drain_answers_in_flight;
          Support.quick "malformed payload costs a bad_job, not the session"
            test_malformed_payload_is_bad_job;
        ] );
      ( "trace",
        [
          Support.quick "trace ids survive internal id rewriting"
            test_trace_id_roundtrip;
        ] );
    ]

(** Tests for the observability layer (lib/obs): histogram bucket
    algebra, domain-sharded counter merging, the canonical trace
    schemas (JSONL key order, Chrome trace-event shape) under a
    deterministic clock, the zero-interference contract (mc verdicts,
    counterexamples and counts are bit-identical with tracing on or
    off, across domain counts and POR modes), and the accumulated
    spool metrics that back [elin serve]'s shutdown snapshot. *)

open Elin_spec
open Elin_runtime
open Elin_checker
open Elin_mc
open Elin_svc
open Elin_test_support
module Obs = Elin_obs

(* Every test that flips a global observability switch restores it —
   the registry and the trace buffers are process-wide. *)
let with_obs ?(metrics = false) ?(trace = false) f =
  if metrics then Obs.Metrics.enable ();
  if trace then Obs.Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.disable ();
      Obs.Metrics.disable ();
      Obs.Trace.clear ())
    f

(* ------------------------------------------------------------------ *)
(* Metrics: histogram bucket algebra                                  *)
(* ------------------------------------------------------------------ *)

let test_histogram_buckets () =
  let open Obs.Metrics.Histogram in
  (* Bucket 0 absorbs non-positive values; bucket [i >= 1] holds
     [2^(i-1) .. 2^i - 1]. *)
  Alcotest.(check int) "0 -> bucket 0" 0 (bucket_of 0);
  Alcotest.(check int) "negative -> bucket 0" 0 (bucket_of (-7));
  Alcotest.(check int) "1 -> bucket 1" 1 (bucket_of 1);
  Alcotest.(check int) "2 -> bucket 2" 2 (bucket_of 2);
  Alcotest.(check int) "3 -> bucket 2" 2 (bucket_of 3);
  Alcotest.(check int) "4 -> bucket 3" 3 (bucket_of 4);
  Alcotest.(check int) "1023 -> bucket 10" 10 (bucket_of 1023);
  Alcotest.(check int) "1024 -> bucket 11" 11 (bucket_of 1024);
  (* OCaml's max_int is 2^62 - 1: the highest reachable bucket. *)
  Alcotest.(check int) "max_int -> bucket 62" 62 (bucket_of max_int);
  Alcotest.(check int) "bucket 0 lower" 0 (bucket_lower 0);
  Alcotest.(check int) "bucket 0 upper" 0 (bucket_upper 0);
  (* Edges are consistent with classification: a bucket's own lower
     and upper bounds classify back into it, and edges tile the line
     with no gap. *)
  for i = 1 to 40 do
    Alcotest.(check int)
      (Printf.sprintf "lower edge of %d classifies home" i)
      i
      (bucket_of (bucket_lower i));
    if i < 62 then begin
      Alcotest.(check int)
        (Printf.sprintf "upper edge of %d classifies home" i)
        i
        (bucket_of (bucket_upper i));
      Alcotest.(check int)
        (Printf.sprintf "bucket %d upper + 1 = bucket %d lower" i (i + 1))
        (bucket_lower (i + 1))
        (bucket_upper i + 1)
    end
  done;
  Alcotest.(check int) "bucket 62 upper is max_int" max_int (bucket_upper 62);
  Alcotest.(check int) "overflow bucket upper is max_int" max_int
    (bucket_upper 63)

let test_histogram_observe_quantile () =
  let h = Obs.Metrics.histogram "test.obs.lat" in
  (* 90 small values in bucket 1, 10 large in bucket 11: p50 reports
     bucket 1's upper edge, p99 bucket 11's. *)
  for _ = 1 to 90 do
    Obs.Metrics.Histogram.observe h 1
  done;
  for _ = 1 to 10 do
    Obs.Metrics.Histogram.observe h 1024
  done;
  (match Obs.Metrics.find "test.obs.lat" with
  | Some (Obs.Metrics.Histogram_v { count; sum; buckets }) ->
    Alcotest.(check int) "count" 100 count;
    Alcotest.(check int) "sum" (90 + (10 * 1024)) sum;
    Alcotest.(check (list (pair int int))) "nonzero buckets"
      [ (1, 90); (11, 10) ]
      buckets;
    Alcotest.(check int) "p50 = bucket 1 upper" 1
      (Obs.Metrics.quantile ~count ~buckets 0.5);
    Alcotest.(check int) "p99 = bucket 11 upper" 2047
      (Obs.Metrics.quantile ~count ~buckets 0.99)
  | _ -> Alcotest.fail "histogram not found in registry");
  Alcotest.(check int) "empty quantile is 0" 0
    (Obs.Metrics.quantile ~count:0 ~buckets:[] 0.5)

(* ------------------------------------------------------------------ *)
(* Metrics: sharded counters under domain hammering                   *)
(* ------------------------------------------------------------------ *)

let test_counter_shard_hammer () =
  let c = Obs.Metrics.counter "test.obs.hammer" in
  let per_domain = 25_000 in
  let doms =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Obs.Metrics.Counter.incr c
            done))
  in
  List.iter Domain.join doms;
  Alcotest.(check int) "merged total" (4 * per_domain)
    (Obs.Metrics.Counter.value c);
  (* The spawning domain never bumped: its own shard stayed empty
     (this is what lets mc workers compute per-tick deltas). *)
  Alcotest.(check int) "main shard untouched" 0
    (Obs.Metrics.Counter.shard_value c);
  Obs.Metrics.Counter.add c 17;
  Alcotest.(check int) "main shard sees own add" 17
    (Obs.Metrics.Counter.shard_value c);
  Alcotest.(check int) "merged total after add" ((4 * per_domain) + 17)
    (Obs.Metrics.Counter.value c)

let test_registry_semantics () =
  let g = Obs.Metrics.gauge "test.obs.gauge" in
  Obs.Metrics.Gauge.set g 41;
  Obs.Metrics.Gauge.add g 1;
  Alcotest.(check int) "gauge value" 42 (Obs.Metrics.Gauge.value g);
  (* Find-or-create: a second registration is the same cell. *)
  let g' = Obs.Metrics.gauge "test.obs.gauge" in
  Obs.Metrics.Gauge.set g' 7;
  Alcotest.(check int) "same cell via re-registration" 7
    (Obs.Metrics.Gauge.value g);
  (* Kind mismatch is a programming error. *)
  (match Obs.Metrics.counter "test.obs.gauge" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch should raise Invalid_argument");
  (* Snapshot is sorted by name and resettable. *)
  let names = List.map fst (Obs.Metrics.snapshot ()) in
  Alcotest.(check (list string)) "snapshot sorted" (List.sort compare names)
    names;
  Obs.Metrics.reset ();
  Alcotest.(check int) "reset zeroes the gauge" 0 (Obs.Metrics.Gauge.value g);
  match Obs.Metrics.find "test.obs.hammer" with
  | Some (Obs.Metrics.Counter_v 0) -> ()
  | _ -> Alcotest.fail "reset should zero counters but keep registrations"

let test_metrics_jsonl_schema () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter "test.obs.schema.c" in
  let h = Obs.Metrics.histogram "test.obs.schema.h" in
  Obs.Metrics.Counter.add c 3;
  Obs.Metrics.Histogram.observe h 5;
  let lines = List.map Jsonl.to_string (Obs.Metrics.to_jsonl ()) in
  let find_line name =
    match
      List.find_opt
        (fun l ->
          match Jsonl.str_mem "metric" (Jsonl.of_string l) with
          | Some n -> n = name
          | None -> false)
        lines
    with
    | Some l -> l
    | None -> Alcotest.failf "no metric line for %s" name
  in
  (* Canonical key order is part of the schema: goldens diff cleanly. *)
  Alcotest.(check string) "counter line"
    {|{"metric":"test.obs.schema.c","type":"counter","value":3}|}
    (find_line "test.obs.schema.c");
  Alcotest.(check string) "histogram line"
    {|{"metric":"test.obs.schema.h","type":"histogram","count":1,"sum":5,"p50":7,"p99":7,"buckets":[[3,1]]}|}
    (find_line "test.obs.schema.h")

(* ------------------------------------------------------------------ *)
(* Trace: canonical schemas under a deterministic clock               *)
(* ------------------------------------------------------------------ *)

(* Fake monotonic clock: 1000 ns per read.  The event pattern below
   performs exactly four reads (instant; span begin; inner instant;
   span end), pinning every ts and dur. *)
let with_fake_clock f =
  let t = ref 0L in
  Obs.Clock.set_source_for_testing
    (Some
       (fun () ->
         t := Int64.add !t 1000L;
         !t));
  Fun.protect ~finally:(fun () -> Obs.Clock.set_source_for_testing None) f

let record_golden_events () =
  Obs.Trace.clear ();
  with_obs ~trace:true @@ fun () ->
  with_fake_clock @@ fun () ->
  Obs.Trace.instant ~cat:"t" "a";
  Obs.Trace.with_span ~cat:"t" ~args:[ ("k", Jsonl.Int 7) ] "b" (fun () ->
      Obs.Trace.instant ~cat:"t" "c");
  Obs.Trace.events ()

let test_trace_jsonl_golden () =
  let evs = record_golden_events () in
  let lines = List.map Jsonl.to_string (Obs.Trace.to_jsonl evs) in
  (* ts rebased to the first event; key order ts, dur, ph, name, cat,
     tid, args; dur only on spans, args only when nonempty. *)
  Alcotest.(check (list string)) "canonical JSONL"
    [
      {|{"ts":0,"ph":"i","name":"a","cat":"t","tid":0}|};
      {|{"ts":1000,"dur":2000,"ph":"X","name":"b","cat":"t","tid":0,"args":{"k":7}}|};
      {|{"ts":2000,"ph":"i","name":"c","cat":"t","tid":0}|};
    ]
    lines

let test_trace_chrome_golden () =
  let evs = record_golden_events () in
  let chrome = Obs.Trace.to_chrome evs in
  let tevs =
    match Jsonl.mem "traceEvents" chrome with
    | Some (Jsonl.Arr l) -> l
    | _ -> Alcotest.fail "missing traceEvents array"
  in
  Alcotest.(check int) "three events" 3 (List.length tevs);
  List.iter
    (fun ev ->
      Alcotest.(check (option int)) "pid 1" (Some 1) (Jsonl.int_mem "pid" ev);
      Alcotest.(check bool) "has name" true (Jsonl.str_mem "name" ev <> None))
    tevs;
  let span =
    match
      List.find_opt (fun ev -> Jsonl.str_mem "ph" ev = Some "X") tevs
    with
    | Some s -> s
    | None -> Alcotest.fail "no span event"
  in
  (* Chrome timestamps are microsecond floats: 1000 ns rebase = 1 us. *)
  Alcotest.(check (option (float 1e-9))) "span ts us" (Some 1.0)
    (Jsonl.float_mem "ts" span);
  Alcotest.(check (option (float 1e-9))) "span dur us" (Some 2.0)
    (Jsonl.float_mem "dur" span);
  List.iter
    (fun ev ->
      if Jsonl.str_mem "ph" ev = Some "i" then
        Alcotest.(check (option string)) "instant scope t" (Some "t")
          (Jsonl.str_mem "s" ev))
    tevs

let test_trace_disabled_is_silent () =
  Obs.Trace.clear ();
  Alcotest.(check bool) "off by default" false (Obs.Trace.on ());
  Alcotest.(check int64) "begin_ns is 0 when off" 0L (Obs.Trace.begin_ns ());
  Obs.Trace.instant "nope";
  Obs.Trace.complete ~ts:0L "nope";
  Obs.Trace.with_span "nope" (fun () -> ());
  Alcotest.(check int) "no events recorded" 0
    (List.length (Obs.Trace.events ()))

(* ------------------------------------------------------------------ *)
(* Zero interference: mc verdicts are identical with tracing on/off   *)
(* ------------------------------------------------------------------ *)

(* The engine-level counterpart of the CLI's byte-identical-output
   contract: across domain counts and POR modes, enabling the full
   observability stack must not change the verdict, the lex-min
   counterexample, or any exploration count. *)
let test_mc_determinism_under_tracing () =
  let impl = Elin_core.Ev_testandset.impl () in
  let wl = Run.uniform_workload Op.test_and_set ~procs:2 ~per_proc:1 in
  let cfg = Engine.for_spec (Testandset.spec ()) in
  let run ~domains ~por () =
    Mc.check impl ~workloads:wl ~max_steps:12 ~domains ~por (fun h ->
        Engine.linearizable cfg h)
  in
  List.iter
    (fun domains ->
      List.iter
        (fun por ->
          let label n =
            Printf.sprintf "%s (domains=%d por=%b)" n domains por
          in
          let off = run ~domains ~por () in
          let on =
            with_obs ~metrics:true ~trace:true @@ fun () ->
            let out = run ~domains ~por () in
            Alcotest.(check bool) (label "tracing recorded something") true
              (Obs.Trace.events () <> []);
            out
          in
          Alcotest.(check bool) (label "verdict") off.Mc.ok on.Mc.ok;
          Alcotest.(check int) (label "states") off.Mc.stats.Search.states
            on.Mc.stats.Search.states;
          Alcotest.(check int) (label "leaves") off.Mc.stats.Search.leaves
            on.Mc.stats.Search.leaves;
          Alcotest.(check int) (label "pruned") off.Mc.stats.Search.pruned
            on.Mc.stats.Search.pruned;
          Alcotest.(check int) (label "dedup_hits")
            off.Mc.stats.Search.dedup_hits on.Mc.stats.Search.dedup_hits;
          match (off.Mc.counterexample, on.Mc.counterexample) with
          | Some a, Some b ->
            Alcotest.check Support.history (label "lex-min counterexample") a b
          | None, None -> ()
          | _ -> Alcotest.fail (label "counterexample presence differs"))
        [ false; true ])
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Spool: accumulated metrics across files (the serve flush path)     *)
(* ------------------------------------------------------------------ *)

let sample_history_text =
  "inv 0 0 fetch&inc\nres 0 0 0\ninv 1 0 fetch&inc\nres 1 0 1\n"

let mk_job id =
  {
    Job.id;
    seq = 0;
    spec = "fetch&increment";
    check = Job.Linearizable;
    node_budget = None;
    timeout_ms = None;
    history_text = sample_history_text;
    trace = None;
    parent = None;
  }

(* [elin serve --watch] flushes one final snapshot on SIGINT; what
   makes that snapshot meaningful is a single caller-owned registry
   accumulating across every processed file.  Regression: two files
   through [watch] with a shared [metrics] must count both. *)
let test_spool_metrics_accumulate () =
  let dir = "obs_spool_test" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  List.iter
    (fun name ->
      let oc = open_out (Filename.concat dir (name ^ ".jobs")) in
      output_string oc (Job.to_line (mk_job (name ^ "-1")) ^ "\n");
      close_out oc)
    [ "a"; "b" ];
  let metrics = Metrics.create () in
  (* Watch until the spool settles: [stop] is checked once per scan. *)
  Spool.watch ~domains:1 ~dir ~metrics ~poll_ms:1
    ~stop:(fun () -> Spool.pending ~dir = [])
    ();
  let s = Metrics.snapshot metrics in
  Alcotest.(check int) "submitted accumulates across files" 2
    s.Metrics.submitted;
  Alcotest.(check int) "completed accumulates across files" 2
    s.Metrics.completed;
  Alcotest.(check int) "both passed" 2 s.Metrics.pass;
  (* And without a shared registry each file still counts alone: a
     fresh scan over a re-pending spool starts from zero. *)
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".verdicts" then
        Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  let fresh = Metrics.create () in
  ignore (Spool.process_file ~domains:1 ~dir ~metrics:fresh "a");
  Alcotest.(check int) "fresh registry counts one file" 1
    (Metrics.snapshot fresh).Metrics.submitted

(* ------------------------------------------------------------------ *)
(* OpenMetrics exposition                                             *)
(* ------------------------------------------------------------------ *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* render_snapshot is pure, so the golden feeds a hand-built snapshot:
   one counter, one gauge, one histogram with mass in buckets 1 and 11
   (upper edges 1 and 2047). *)
let test_openmetrics_golden () =
  let body =
    Obs.Openmetrics.render_snapshot
      [
        ("net.jobs", Obs.Metrics.Counter_v 3);
        ("svc.latency_us",
         Obs.Metrics.Histogram_v
           { count = 100; sum = 10330; buckets = [ (1, 90); (11, 10) ] });
        ("svc.queue_depth", Obs.Metrics.Gauge_v 2);
      ]
  in
  Alcotest.(check string) "exposition golden"
    (String.concat "\n"
       [
         "# TYPE elin_net_jobs counter";
         "elin_net_jobs_total 3";
         "# TYPE elin_svc_latency_us histogram";
         {|elin_svc_latency_us_bucket{le="1"} 90|};
         {|elin_svc_latency_us_bucket{le="2047"} 100|};
         {|elin_svc_latency_us_bucket{le="+Inf"} 100|};
         "elin_svc_latency_us_count 100";
         "elin_svc_latency_us_sum 10330";
         "# TYPE elin_svc_latency_us_p50 gauge";
         "elin_svc_latency_us_p50 1";
         "# TYPE elin_svc_latency_us_p99 gauge";
         "elin_svc_latency_us_p99 2047";
         "# TYPE elin_svc_queue_depth gauge";
         "elin_svc_queue_depth 2";
         "# EOF";
         "";
       ])
    body;
  (match Obs.Openmetrics.validate body with
  | Ok () -> ()
  | Error e -> Alcotest.failf "golden must validate: %s" e);
  (* The render/validate pair closes on the live registry too. *)
  (match Obs.Openmetrics.validate (Obs.Openmetrics.render ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "live render must validate: %s" e);
  let expect_err what text =
    match Obs.Openmetrics.validate text with
    | Ok () -> Alcotest.failf "%s must be rejected" what
    | Error e ->
      Alcotest.(check bool) (what ^ " error mentions openmetrics") true
        (contains e "openmetrics")
  in
  expect_err "missing terminator" "elin_x_total 1\n";
  expect_err "unparsable sample" "not a sample line\n# EOF\n";
  expect_err "non-numeric value" "elin_x_total banana\n# EOF\n";
  expect_err "content after EOF" "# EOF\nelin_x_total 1\n"

(* ------------------------------------------------------------------ *)
(* Flight recorder: the ring really is a ring                         *)
(* ------------------------------------------------------------------ *)

let test_recorder_ring_bound () =
  Obs.Recorder.clear ();
  for i = 1 to 300 do
    Obs.Recorder.note "tick" ~id:(string_of_int i)
  done;
  let es = Obs.Recorder.entries () in
  Alcotest.(check int) "capped at 256 entries" 256 (List.length es);
  (* Oldest-first overwrite: of 300 notes, the survivors are exactly
     the last 256 (45..300), in order. *)
  Alcotest.(check (list string)) "oldest overwritten first, order kept"
    (List.init 256 (fun i -> string_of_int (i + 45)))
    (List.map (fun e -> e.Obs.Recorder.id) es);
  Obs.Recorder.clear ();
  Alcotest.(check int) "clear empties the ring" 0
    (List.length (Obs.Recorder.entries ()))

(* ------------------------------------------------------------------ *)
(* Trace metadata + offline analysis toolkit                          *)
(* ------------------------------------------------------------------ *)

let test_trace_meta_golden () =
  (* Fake clock: the first event lands at absolute ts 1000, which is
     exactly what the meta header's t0 must expose (events themselves
     are rebased to 0). *)
  let evs = record_golden_events () in
  Alcotest.(check string) "meta header golden"
    {|{"meta":"elin.trace","t0":1000,"proc":"elin"}|}
    (Jsonl.to_string (Obs.Trace.meta_json evs))

let test_trace_tools_load_merge_report_flame () =
  let tmp suffix = Filename.temp_file "elin-tt" suffix in
  let client_f = tmp ".jsonl" in
  let server_f = tmp ".json" in
  let naked_f = tmp ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_proc "elin";
      List.iter
        (fun f -> if Sys.file_exists f then Sys.remove f)
        [ client_f; server_f; naked_f ])
    (fun () ->
      (* Two "processes" sharing one monotonic clock, like two elin
         processes on one host: client records first, server after. *)
      (with_fake_clock @@ fun () ->
       with_obs ~trace:true @@ fun () ->
       Obs.Trace.set_proc "client";
       Obs.Trace.with_span ~cat:"net"
         ~args:[ ("id", Jsonl.Str "j1"); ("trace", Jsonl.Str "j1") ]
         "client.job"
         (fun () -> ());
       Obs.Trace.write_file client_f;
       Obs.Trace.clear ();
       Obs.Trace.set_proc "serve";
       Obs.Trace.with_span ~cat:"net"
         ~args:[ ("id", Jsonl.Str "j1"); ("trace", Jsonl.Str "j1") ]
         "net.job"
         (fun () ->
           Obs.Trace.with_span ~cat:"svc"
             ~args:[ ("id", Jsonl.Str "j1"); ("trace", Jsonl.Str "j1") ]
             "svc.job"
             (fun () -> ()));
       Obs.Trace.write_file server_f);
      let load f =
        match Obs.Trace_tools.load f with
        | Ok x -> x
        | Error e -> Alcotest.failf "load %s: %s" f e
      in
      let cf = load client_f in
      let sf = load server_f in
      Alcotest.(check string) "proc from JSONL meta header" "client"
        cf.Obs.Trace_tools.proc;
      Alcotest.(check string) "proc from Chrome otherData" "serve"
        sf.Obs.Trace_tools.proc;
      (match (cf.Obs.Trace_tools.t0, sf.Obs.Trace_tools.t0) with
      | Some ct0, Some st0 ->
        Alcotest.(check bool) "server t0 after client t0 (shared clock)"
          true
          (Int64.compare ct0 st0 < 0)
      | _ -> Alcotest.fail "both exports must carry t0");
      (* Merge re-aligns on t0 and assigns one pid per process. *)
      (match Obs.Trace_tools.merge [ cf; sf ] with
      | Error e -> Alcotest.failf "merge: %s" e
      | Ok chrome ->
        let tevs =
          match Jsonl.mem "traceEvents" chrome with
          | Some (Jsonl.Arr l) -> l
          | _ -> Alcotest.fail "merged output missing traceEvents"
        in
        let pids =
          List.sort_uniq compare
            (List.filter_map (fun e -> Jsonl.int_mem "pid" e) tevs)
        in
        Alcotest.(check (list int)) "one pid per process (+ metadata)"
          [ 1; 2 ] pids);
      (* A trace with no metadata loads (back-compat) but refuses to
         merge: unaligned clocks would silently lie. *)
      let oc = open_out naked_f in
      output_string oc {|{"ts":0,"ph":"i","name":"x","cat":"t","tid":0}|};
      output_string oc "\n";
      close_out oc;
      let nf = load naked_f in
      Alcotest.(check bool) "no t0 without metadata" true
        (nf.Obs.Trace_tools.t0 = None);
      (match Obs.Trace_tools.merge [ cf; nf ] with
      | Error e ->
        Alcotest.(check bool) "merge refusal names t0" true (contains e "t0")
      | Ok _ -> Alcotest.fail "merge must refuse a t0-less input");
      (* Report: phases show up, and the per-job attribution keys on
         the propagated trace id. *)
      let rep =
        Obs.Trace_tools.report (cf.Obs.Trace_tools.evs @ sf.Obs.Trace_tools.evs)
      in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("report mentions " ^ needle) true
            (contains rep needle))
        [ "client.job"; "net.job"; "svc.job"; "j1" ];
      (* Flame: stacks nest by time containment within a lane. *)
      let fl = Obs.Trace_tools.flame [ cf; sf ] in
      Alcotest.(check bool) "server stack nests svc.job under net.job" true
        (contains fl "serve;net.job;svc.job");
      Alcotest.(check bool) "client stack present" true
        (contains fl "client;client.job"))

(* ------------------------------------------------------------------ *)
(* Trace propagation never changes verdicts (corpus gate)             *)
(* ------------------------------------------------------------------ *)

(* The service-level zero-interference gate: stamping every corpus job
   with a trace id AND enabling the full observability stack must
   leave every verdict line byte-identical to the plain run. *)
let test_corpus_trace_propagation_gate () =
  let ic = open_in "support/corpus_50.jobs" in
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | l -> go (l :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  in
  let jobs =
    List.filter_map
      (fun item -> match item with `Job j -> Some j | `Bad _ -> None)
      (Pool.parse_jobs lines)
  in
  Alcotest.(check bool) "corpus parsed" true (List.length jobs > 40);
  let plain =
    List.map Verdict.to_line (Pool.run_batch ~domains:2 jobs)
  in
  let stamped =
    List.map
      (fun j -> { j with Job.trace = Some ("trace-" ^ j.Job.id) })
      jobs
  in
  let traced =
    with_obs ~metrics:true ~trace:true @@ fun () ->
    let out = List.map Verdict.to_line (Pool.run_batch ~domains:2 stamped) in
    Alcotest.(check bool) "tracing recorded spans" true
      (Obs.Trace.events () <> []);
    out
  in
  Alcotest.(check (list string))
    "verdict lines identical with trace ids + tracing on" plain traced

(* ------------------------------------------------------------------ *)
(* Clock                                                              *)
(* ------------------------------------------------------------------ *)

let test_clock_monotonic () =
  let a = Obs.Clock.now_ns () in
  let b = Obs.Clock.now_ns () in
  Alcotest.(check bool) "non-decreasing" true (Int64.compare a b <= 0);
  Alcotest.(check bool) "positive" true (Int64.compare 0L a < 0);
  let t0 = Obs.Clock.now_s () in
  let t1 = Obs.Clock.now_s () in
  Alcotest.(check bool) "seconds non-decreasing" true (t0 <= t1);
  Alcotest.(check (float 1e-9)) "ns_to_ms" 1.5 (Obs.Clock.ns_to_ms 1_500_000L);
  Alcotest.(check (float 1e-9)) "ns_to_us" 2.0 (Obs.Clock.ns_to_us 2_000L);
  with_fake_clock (fun () ->
      Alcotest.(check int64) "fake source respected" 1000L
        (Obs.Clock.now_ns ()));
  Alcotest.(check bool) "real clock restored" true
    (Int64.compare a (Obs.Clock.now_ns ()) <= 0)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Support.quick "histogram bucket edges" test_histogram_buckets;
          Support.quick "histogram observe and quantiles"
            test_histogram_observe_quantile;
          Support.quick "4-domain counter shard hammer"
            test_counter_shard_hammer;
          Support.quick "registry find-or-create, reset, kind mismatch"
            test_registry_semantics;
          Support.quick "metric JSONL canonical schema"
            test_metrics_jsonl_schema;
        ] );
      ( "trace",
        [
          Support.quick "canonical JSONL golden" test_trace_jsonl_golden;
          Support.quick "Chrome trace-event shape" test_trace_chrome_golden;
          Support.quick "disabled mode records nothing"
            test_trace_disabled_is_silent;
        ] );
      ( "zero-interference",
        [
          Support.quick "mc verdict identical with tracing on/off"
            test_mc_determinism_under_tracing;
        ] );
      ( "spool",
        [
          Support.quick "shared registry accumulates across files"
            test_spool_metrics_accumulate;
        ] );
      ( "openmetrics",
        [
          Support.quick "exposition golden and validator"
            test_openmetrics_golden;
        ] );
      ( "recorder",
        [
          Support.quick "ring bound drops oldest first"
            test_recorder_ring_bound;
        ] );
      ( "trace-tools",
        [
          Support.quick "meta header golden" test_trace_meta_golden;
          Support.quick "load, merge, report, flame"
            test_trace_tools_load_merge_report_flame;
          Support.quick "corpus verdicts identical under trace propagation"
            test_corpus_trace_propagation_gate;
        ] );
      ("clock", [ Support.quick "monotonic source" test_clock_monotonic ]);
    ]

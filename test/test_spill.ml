(** Tests for the external-memory spill tier and crash-safe
    checkpointing wired through lib/mc: dedup semantics bit-identical
    across spill on/off — verdicts, lex-min counterexamples, and
    counts — for both engines, 1/2/4 domains, POR on/off and dedup
    on/off; checkpoint + resume reaching the identical outcome;
    identity-mismatch rejection; and observability zero-interference
    under spill. *)

open Elin_spec
open Elin_runtime
open Elin_checker
open Elin_mc
open Elin_test_support

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "elin-spill-test-%d-%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

(* A tiny hot tier so even small test spaces spill for real. *)
let tiny_spill ?(every = 0) ?(identity = "test") ?on_checkpoint dir =
  Mc.spill ~hot:64 ~every ~identity ?on_checkpoint dir

let engines = [ Search.Barrier; Search.Sharded ]
let domain_counts = [ 1; 2; 4 ]

let check_stats_equal name (a : Search.stats) (b : Search.stats) =
  Alcotest.(check int) (name ^ " states") a.Search.states b.Search.states;
  Alcotest.(check int) (name ^ " dedup_hits") a.Search.dedup_hits
    b.Search.dedup_hits;
  Alcotest.(check int) (name ^ " kept") a.Search.kept b.Search.kept;
  Alcotest.(check int) (name ^ " pruned") a.Search.pruned b.Search.pruned;
  Alcotest.(check int)
    (name ^ " frontier_peak")
    a.Search.frontier_peak b.Search.frontier_peak;
  Alcotest.(check int) (name ^ " leaves") a.Search.leaves b.Search.leaves;
  Alcotest.(check int) (name ^ " cut") a.Search.cut b.Search.cut;
  Alcotest.(check int) (name ^ " levels") a.Search.levels b.Search.levels

(* --- spill on/off equivalence: stats grid ------------------------- *)

(* fai counter, 2 procs x 2 ops: a few thousand states, enough to
   overflow a 64-entry hot tier many times over. *)
let fai_workload () =
  let impl = Impl.of_spec (Faicounter.spec ()) in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:2 in
  (impl, wl)

let spill_equivalence_grid () =
  let impl, wl = fai_workload () in
  List.iter
    (fun engine ->
      List.iter
        (fun domains ->
          List.iter
            (fun por ->
              List.iter
                (fun dedup ->
                  let name =
                    Printf.sprintf "%s d%d por=%b dedup=%b"
                      (Search.engine_to_string engine)
                      domains por dedup
                  in
                  let ram =
                    Mc.count_states impl ~workloads:wl ~max_steps:10 ~engine
                      ~domains ~dedup ~por ()
                  in
                  let sp = tiny_spill (fresh_dir ()) in
                  let spilled =
                    Mc.count_states impl ~workloads:wl ~max_steps:10 ~engine
                      ~domains ~dedup ~por ~spill:sp ()
                  in
                  check_stats_equal name ram spilled;
                  if dedup then begin
                    match sp.Mc.store with
                    | None -> Alcotest.fail (name ^ ": no store stats")
                    | Some s ->
                      Alcotest.(check bool)
                        (name ^ " actually spilled")
                        true
                        (s.Elin_store.Tiered_set.spilled > 0)
                  end)
                [ true; false ])
            [ true; false ])
        domain_counts)
    engines

(* The verdict side: a violating implementation must yield the same
   lex-min counterexample with and without spill. *)
let spill_preserves_counterexample () =
  let impl = Elin_core.Ev_testandset.impl () in
  let wl = Run.uniform_workload Op.test_and_set ~procs:2 ~per_proc:1 in
  let cfg = Engine.for_spec (Testandset.spec ()) in
  List.iter
    (fun engine ->
      let run spill =
        Mc.check impl ~workloads:wl ~max_steps:12 ~engine ~domains:2 ?spill
          (fun h -> Engine.linearizable cfg h)
      in
      let ram = run None in
      let spilled = run (Some (tiny_spill (fresh_dir ()))) in
      Alcotest.(check bool) "violation" false ram.Mc.ok;
      Alcotest.(check bool) "violation under spill" false spilled.Mc.ok;
      Alcotest.check Support.history
        (Printf.sprintf "cex (%s)" (Search.engine_to_string engine))
        (Option.get ram.Mc.counterexample)
        (Option.get spilled.Mc.counterexample))
    engines

(* Leaf-history sets survive the spill tier exactly. *)
let spill_preserves_leaf_histories () =
  let impl, wl = fai_workload () in
  let ram, _ = Mc.leaf_histories impl ~workloads:wl ~max_steps:8 ~domains:2 () in
  List.iter
    (fun engine ->
      let spilled, _ =
        Mc.leaf_histories impl ~workloads:wl ~max_steps:8 ~engine ~domains:2
          ~spill:(tiny_spill (fresh_dir ()))
          ()
      in
      Alcotest.(check int)
        (Printf.sprintf "leaf count (%s)" (Search.engine_to_string engine))
        (List.length ram) (List.length spilled);
      List.iter2
        (fun a b -> Alcotest.check Support.history "leaf history" a b)
        ram spilled)
    engines

(* Valency workload through the spill tier. *)
let spill_valency_equivalence () =
  let p = Elin_valency.Protocols.registers_plus_linearizable_queue () in
  let inputs = [| Value.int 0; Value.int 1 |] in
  let run ?spill engine =
    Mc_valency.check_consensus p ~inputs ~max_steps:16 ~engine ~domains:2
      ?spill ()
  in
  List.iter
    (fun engine ->
      let ram = run engine in
      let spilled = run ~spill:(tiny_spill (fresh_dir ())) engine in
      Alcotest.(check bool) "terminated" ram.Mc_valency.terminated
        spilled.Mc_valency.terminated;
      Alcotest.(check int) "decision count"
        (List.length ram.Mc_valency.decisions)
        (List.length spilled.Mc_valency.decisions);
      List.iter2
        (fun a b ->
          Alcotest.(check bool) "decision vector" true
            (Array.for_all2 Value.equal a b))
        ram.Mc_valency.decisions spilled.Mc_valency.decisions;
      check_stats_equal
        (Search.engine_to_string engine)
        ram.Mc_valency.stats spilled.Mc_valency.stats)
    engines

(* --- checkpoint + resume ------------------------------------------ *)

exception Abort_after_checkpoint

(* Abort the run right after checkpoint [kill_at] commits, then resume
   from the directory: the resumed run must land on stats identical to
   the uninterrupted reference, for both engines and several domain
   counts. *)
let checkpoint_resume_identical () =
  let impl, wl = fai_workload () in
  List.iter
    (fun engine ->
      List.iter
        (fun domains ->
          let name =
            Printf.sprintf "%s d%d" (Search.engine_to_string engine) domains
          in
          let reference =
            Mc.count_states impl ~workloads:wl ~max_steps:10 ~engine ~domains
              ()
          in
          let dir = fresh_dir () in
          let aborting =
            tiny_spill ~every:2 ~identity:name
              ~on_checkpoint:(fun seq ->
                if seq = 2 then raise Abort_after_checkpoint)
              dir
          in
          (match
             Mc.count_states impl ~workloads:wl ~max_steps:10 ~engine ~domains
               ~spill:aborting ()
           with
          | _ -> Alcotest.fail (name ^ ": expected abort")
          | exception Abort_after_checkpoint -> ());
          let resumed_sp = tiny_spill ~every:2 ~identity:name dir in
          let resumed =
            Mc.count_states impl ~workloads:wl ~max_steps:10 ~engine ~domains
              ~spill:resumed_sp ~resume:true ()
          in
          check_stats_equal name reference resumed;
          Alcotest.(check bool) (name ^ " resumed_from") true
            (resumed_sp.Mc.resumed_from = Some 2))
        [ 1; 2 ])
    engines

(* Same, against a violating predicate: the lex-min counterexample
   must survive kill + resume (stop_early off so checkpoints happen
   before the violating level is classified). *)
let checkpoint_resume_counterexample () =
  let impl, wl = fai_workload () in
  (* Violated exactly by the fully completed leaves (4 ops -> 8
     events), which first appear well after checkpoint 2 commits. *)
  let bad h = Elin_history.History.length h < 8 in
  let reference =
    Mc.check impl ~workloads:wl ~max_steps:14 ~engine:Search.Sharded ~domains:2
      bad
  in
  Alcotest.(check bool) "violation" false reference.Mc.ok;
  let dir = fresh_dir () in
  let aborting =
    tiny_spill ~every:2 ~identity:"cex"
      ~on_checkpoint:(fun seq -> if seq = 2 then raise Abort_after_checkpoint)
      dir
  in
  (match
     Mc.check impl ~workloads:wl ~max_steps:14 ~engine:Search.Sharded
       ~domains:2 ~spill:aborting bad
   with
  | _ -> Alcotest.fail "expected abort"
  | exception Abort_after_checkpoint -> ());
  let resumed =
    Mc.check impl ~workloads:wl ~max_steps:14 ~engine:Search.Sharded ~domains:2
      ~spill:(tiny_spill ~every:2 ~identity:"cex" dir)
      ~resume:true bad
  in
  Alcotest.(check bool) "violation after resume" false resumed.Mc.ok;
  Alcotest.check Support.history "cex survives kill+resume"
    (Option.get reference.Mc.counterexample)
    (Option.get resumed.Mc.counterexample)

let expect_corrupt name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Segment.Corrupt")
  | exception Elin_store.Segment.Corrupt _ -> ()

(* Resume refuses: no checkpoint at all, and identity mismatch. *)
let resume_validation () =
  let impl, wl = fai_workload () in
  let empty = fresh_dir () in
  expect_corrupt "resume without checkpoint" (fun () ->
      Mc.count_states impl ~workloads:wl ~max_steps:10 ~domains:2
        ~spill:(tiny_spill ~every:2 empty)
        ~resume:true ());
  (* Seal a real checkpoint under identity "A"... *)
  let dir = fresh_dir () in
  let _ =
    Mc.count_states impl ~workloads:wl ~max_steps:10 ~domains:2
      ~spill:(tiny_spill ~every:2 ~identity:"A" dir)
      ()
  in
  (* ...then try to resume it as identity "B", and under a different
     domain count. *)
  expect_corrupt "identity mismatch" (fun () ->
      Mc.count_states impl ~workloads:wl ~max_steps:10 ~domains:2
        ~spill:(tiny_spill ~every:2 ~identity:"B" dir)
        ~resume:true ());
  expect_corrupt "domain-count mismatch" (fun () ->
      Mc.count_states impl ~workloads:wl ~max_steps:10 ~domains:4
        ~spill:(tiny_spill ~every:2 ~identity:"A" dir)
        ~resume:true ())

(* A run that completes leaves its last checkpoints behind; resuming
   one replays only the tail levels and still reports the full
   (seeded) totals. *)
let resume_after_completion () =
  let impl, wl = fai_workload () in
  let dir = fresh_dir () in
  let full =
    Mc.count_states impl ~workloads:wl ~max_steps:10 ~engine:Search.Sharded
      ~domains:2
      ~spill:(tiny_spill ~every:2 ~identity:"done" dir)
      ()
  in
  let resumed =
    Mc.count_states impl ~workloads:wl ~max_steps:10 ~engine:Search.Sharded
      ~domains:2
      ~spill:(tiny_spill ~every:2 ~identity:"done" dir)
      ~resume:true ()
  in
  check_stats_equal "resume after completion" full resumed

(* --- observability zero-interference ------------------------------ *)

(* Tracing + metrics enabled must not change any count under spill,
   and the spill metrics/spans must actually appear. *)
let obs_zero_interference_under_spill () =
  let impl, wl = fai_workload () in
  let quiet =
    Mc.count_states impl ~workloads:wl ~max_steps:10 ~engine:Search.Sharded
      ~domains:2
      ~spill:(tiny_spill (fresh_dir ()))
      ()
  in
  Elin_obs.Metrics.reset ();
  Elin_obs.Metrics.enable ();
  Elin_obs.Trace.enable ();
  let traced =
    Fun.protect
      ~finally:(fun () ->
        Elin_obs.Trace.disable ();
        Elin_obs.Metrics.disable ())
      (fun () ->
        Mc.count_states impl ~workloads:wl ~max_steps:10
          ~engine:Search.Sharded ~domains:2
          ~spill:(tiny_spill (fresh_dir ()))
          ())
  in
  check_stats_equal "traced = quiet" quiet traced;
  let metric name =
    match Elin_obs.Metrics.find name with
    | Some (Elin_obs.Metrics.Counter_v n) | Some (Elin_obs.Metrics.Gauge_v n)
      ->
      n
    | _ -> -1
  in
  Alcotest.(check bool) "store.flushes counted" true (metric "store.flushes" > 0);
  Alcotest.(check bool) "store.segments gauge" true
    (metric "store.segments" > 0);
  Alcotest.(check bool) "store.disk_bytes gauge" true
    (metric "store.disk_bytes" > 0);
  let events = Elin_obs.Trace.events () in
  let has_span name =
    List.exists (fun (e : Elin_obs.Trace.event) -> e.Elin_obs.Trace.name = name) events
  in
  Alcotest.(check bool) "store.segment_write span" true
    (has_span "store.segment_write");
  Elin_obs.Trace.clear ();
  Elin_obs.Metrics.reset ()

let () =
  Alcotest.run "spill"
    [
      ( "equivalence",
        [
          Alcotest.test_case "stats grid: engines x domains x por x dedup"
            `Slow spill_equivalence_grid;
          Alcotest.test_case "lex-min counterexample" `Quick
            spill_preserves_counterexample;
          Alcotest.test_case "leaf-history set" `Quick
            spill_preserves_leaf_histories;
          Alcotest.test_case "valency workload" `Quick
            spill_valency_equivalence;
        ] );
      ( "resume",
        [
          Alcotest.test_case "kill at checkpoint, resume, identical stats"
            `Quick checkpoint_resume_identical;
          Alcotest.test_case "counterexample survives kill+resume" `Quick
            checkpoint_resume_counterexample;
          Alcotest.test_case "validation refusals" `Quick resume_validation;
          Alcotest.test_case "resume after completion" `Quick
            resume_after_completion;
        ] );
      ( "obs",
        [
          Alcotest.test_case "zero interference + spill telemetry" `Quick
            obs_zero_interference_under_spill;
        ] );
    ]

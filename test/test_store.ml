(** Tests for the external-memory store (lib/store): CRC-32 known
    answers, segment write/probe round trips, the crash corners
    (truncated tails, torn manifests, checksum-corrupt blocks — all
    must fail loudly, never degrade silently), the two-phase
    checkpoint manifest protocol, the tiered visited set's dedup
    semantics against a model, and the cross-process persistence
    contract: a segment written by this process must answer identical
    probes from a freshly spawned one (fingerprints only — never
    [Hashtbl.hash] — may reach disk). *)

open Elin_store
module Fp = Elin_kernel.Fingerprint

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "elin-store-test-%d-%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

(* The deterministic record family shared with the probe child: pure
   functions of the index, so a separate process recomputes them
   bit-identically. *)
let fp_of i = Fp.finish (Fp.int (Fp.start ~seed:0x73746FL () ) i)
let payload_of fp = Int64.lognot fp

let records n =
  let l = List.init n (fun i -> fp_of i) in
  let l = List.sort_uniq Int64.unsigned_compare l in
  Array.of_list (List.map (fun fp -> (fp, payload_of fp)) l)

(* Overwrite [len] bytes at [off] with 0xDE. *)
let corrupt_bytes path ~off ~len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let b = Bytes.make len '\xde' in
  let w = Unix.write fd b 0 len in
  assert (w = len);
  Unix.close fd

let truncate_by path n =
  let st = Unix.stat path in
  Unix.truncate path (st.Unix.st_size - n)

(* --- crc32 -------------------------------------------------------- *)

let crc32_known_answer () =
  (* The canonical IEEE CRC-32 check value. *)
  Alcotest.(check int32) "123456789" 0xCBF43926l
    (Int32.of_int (Crc32.digest_string "123456789"));
  Alcotest.(check int) "empty" 0 (Crc32.digest_string "")

let crc32_incremental () =
  let s = "the quick brown fox" in
  let whole = Crc32.digest_string s in
  let split =
    let c = Crc32.update_string Crc32.start (String.sub s 0 7) in
    let c = Crc32.update_string c (String.sub s 7 (String.length s - 7)) in
    Crc32.finish c
  in
  Alcotest.(check int) "split = whole" whole split

(* --- segments ----------------------------------------------------- *)

let segment_roundtrip () =
  let dir = fresh_dir () in
  let rs = records 1000 in
  Segment.write ~dir ~name:"t.seg" rs;
  let r = Segment.open_reader ~dir ~name:"t.seg" in
  Alcotest.(check int) "length" (Array.length rs) (Segment.length r);
  Alcotest.(check string) "name" "t.seg" (Segment.name r);
  Array.iter
    (fun (fp, pl) ->
      match Segment.probe r fp with
      | Some v -> Alcotest.(check int64) "payload" pl v
      | None -> Alcotest.fail (Printf.sprintf "missing %s" (Fp.to_hex fp)))
    rs;
  for i = 2000 to 2020 do
    Alcotest.(check bool) "absent" true (Segment.probe r (fp_of i) = None)
  done;
  Alcotest.(check bool) "to_array" true (Segment.to_array r = rs);
  let st = Unix.stat (Filename.concat dir "t.seg") in
  Alcotest.(check int) "file_bytes" st.Unix.st_size (Segment.file_bytes r);
  Segment.close r

let segment_rejects_unsorted () =
  let dir = fresh_dir () in
  let bad = [| (2L, 0L); (1L, 0L) |] in
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Segment.write: records not strictly ascending")
    (fun () -> Segment.write ~dir ~name:"bad.seg" bad);
  let dup = [| (1L, 0L); (1L, 0L) |] in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Segment.write: records not strictly ascending")
    (fun () -> Segment.write ~dir ~name:"bad.seg" dup)

(* Unsigned order: a fingerprint with the top bit set sorts last, not
   first — the probe binary searches would otherwise miss. *)
let segment_unsigned_order () =
  let dir = fresh_dir () in
  let rs = [| (1L, 10L); (Int64.min_int, 20L); (-1L, 30L) |] in
  Segment.write ~dir ~name:"u.seg" rs;
  let r = Segment.open_reader ~dir ~name:"u.seg" in
  Alcotest.(check bool) "1" true (Segment.probe r 1L = Some 10L);
  Alcotest.(check bool) "min_int" true
    (Segment.probe r Int64.min_int = Some 20L);
  Alcotest.(check bool) "-1" true (Segment.probe r (-1L) = Some 30L);
  Alcotest.(check bool) "0 absent" true (Segment.probe r 0L = None);
  Segment.close r

let expect_corrupt name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Segment.Corrupt")
  | exception Segment.Corrupt _ -> ()

let segment_truncated_tail () =
  let dir = fresh_dir () in
  Segment.write ~dir ~name:"t.seg" (records 700);
  truncate_by (Filename.concat dir "t.seg") 5;
  expect_corrupt "open truncated" (fun () ->
      Segment.open_reader ~dir ~name:"t.seg")

let segment_corrupt_block () =
  let dir = fresh_dir () in
  let rs = records 700 in
  Segment.write ~dir ~name:"t.seg" rs;
  (* Flip a record byte inside block 0 (records start after the
     36-byte header region).  Header and index checksums still pass:
     the damage must surface at probe time, from the block CRC. *)
  corrupt_bytes (Filename.concat dir "t.seg") ~off:40 ~len:1;
  let r = Segment.open_reader ~dir ~name:"t.seg" in
  expect_corrupt "probe corrupt block" (fun () ->
      (* Probe for a key of block 0: the smallest record. *)
      Segment.probe r (fst rs.(0)));
  Segment.close r

let segment_corrupt_header () =
  let dir = fresh_dir () in
  Segment.write ~dir ~name:"t.seg" (records 100);
  corrupt_bytes (Filename.concat dir "t.seg") ~off:14 ~len:1;
  expect_corrupt "open corrupt header" (fun () ->
      Segment.open_reader ~dir ~name:"t.seg")

let segment_bad_magic () =
  let dir = fresh_dir () in
  Segment.write ~dir ~name:"t.seg" (records 100);
  corrupt_bytes (Filename.concat dir "t.seg") ~off:0 ~len:2;
  expect_corrupt "open bad magic" (fun () ->
      Segment.open_reader ~dir ~name:"t.seg")

(* --- checkpoint manifests ----------------------------------------- *)

let manifest ~seq ~level =
  {
    Checkpoint.seq;
    identity = "{\"test\":true}";
    engine = "sharded";
    dedup = true;
    shards = 2;
    writers = 2;
    level;
    totals =
      {
        Checkpoint.t_states = 100 * seq;
        t_hits = 7;
        t_kept = 90;
        t_aux = 3;
        t_peak = 40;
        t_leaves = 5;
        t_cut = 2;
      };
    per_writer =
      [|
        { Checkpoint.w_states = 60; w_hits = 4; w_kept = 50; w_leaves = 3; w_cut = 1 };
        { Checkpoint.w_states = 40; w_hits = 3; w_kept = 40; w_leaves = 2; w_cut = 1 };
      |];
    per_domain = [| 60; 40 |];
    visited_segments = [ "visited-s0-0.seg"; "visited-s1-0.seg" ];
    exe_digest = Checkpoint.exe_digest ();
  }

let checkpoint_roundtrip () =
  let dir = fresh_dir () in
  Alcotest.(check bool) "empty dir" true (Checkpoint.load_latest ~dir = None);
  Checkpoint.commit ~dir (manifest ~seq:1 ~level:2);
  Checkpoint.commit ~dir (manifest ~seq:2 ~level:4);
  match Checkpoint.load_latest ~dir with
  | None -> Alcotest.fail "no manifest"
  | Some m ->
    Alcotest.(check int) "seq" 2 m.Checkpoint.seq;
    Alcotest.(check int) "level" 4 m.Checkpoint.level;
    Alcotest.(check int) "t_states" 200 m.Checkpoint.totals.Checkpoint.t_states;
    Alcotest.(check int) "writers" 2 (Array.length m.Checkpoint.per_writer);
    Alcotest.(check bool) "segments" true
      (m.Checkpoint.visited_segments
      = [ "visited-s0-0.seg"; "visited-s1-0.seg" ])

(* A torn manifest write leaves only MANIFEST.<seq>.tmp — the old
   manifest must win, silently. *)
let checkpoint_torn_manifest_old_wins () =
  let dir = fresh_dir () in
  Checkpoint.commit ~dir (manifest ~seq:1 ~level:2);
  let oc = open_out (Filename.concat dir "MANIFEST.2.tmp") in
  output_string oc "torn garbage";
  close_out oc;
  (match Checkpoint.load_latest ~dir with
  | Some m -> Alcotest.(check int) "old wins" 1 m.Checkpoint.seq
  | None -> Alcotest.fail "expected manifest 1")

(* A committed-but-corrupt manifest is a loud error — resume must
   never fall back to an older checkpoint or recheck from scratch. *)
let checkpoint_corrupt_manifest_is_loud () =
  let dir = fresh_dir () in
  Checkpoint.commit ~dir (manifest ~seq:1 ~level:2);
  Checkpoint.commit ~dir (manifest ~seq:2 ~level:4);
  corrupt_bytes (Filename.concat dir "MANIFEST.2") ~off:20 ~len:2;
  expect_corrupt "corrupt committed manifest" (fun () ->
      Checkpoint.load_latest ~dir)

let checkpoint_truncated_manifest_is_loud () =
  let dir = fresh_dir () in
  Checkpoint.commit ~dir (manifest ~seq:1 ~level:2);
  truncate_by (Filename.concat dir "MANIFEST.1") 3;
  expect_corrupt "truncated manifest" (fun () -> Checkpoint.load_latest ~dir)

(* Two manifests retained; committing seq prunes seq - 2 and its
   checkpoint artefacts (never visited segments). *)
let checkpoint_prunes_old () =
  let dir = fresh_dir () in
  Checkpoint.write_blob ~dir
    ~name:(Checkpoint.frontier_blob ~seq:1 ~writer:0)
    "blob1";
  Segment.write ~dir ~name:"visited-s0-0.seg" [| (1L, 0L) |];
  Checkpoint.commit ~dir (manifest ~seq:1 ~level:2);
  Checkpoint.commit ~dir (manifest ~seq:2 ~level:4);
  Checkpoint.commit ~dir (manifest ~seq:3 ~level:6);
  Alcotest.(check bool) "manifest 1 pruned" false
    (Sys.file_exists (Filename.concat dir "MANIFEST.1"));
  Alcotest.(check bool) "ckpt1 blob pruned" false
    (Sys.file_exists
       (Filename.concat dir (Checkpoint.frontier_blob ~seq:1 ~writer:0)));
  Alcotest.(check bool) "manifest 2 kept" true
    (Sys.file_exists (Filename.concat dir "MANIFEST.2"));
  Alcotest.(check bool) "visited segments never pruned" true
    (Sys.file_exists (Filename.concat dir "visited-s0-0.seg"))

let blob_roundtrip_and_corruption () =
  let dir = fresh_dir () in
  let data = String.init 3000 (fun i -> Char.chr (i mod 251)) in
  Checkpoint.write_blob ~dir ~name:"x.blob" data;
  Alcotest.(check string) "roundtrip" data
    (Checkpoint.read_blob ~dir ~name:"x.blob");
  expect_corrupt "missing blob" (fun () ->
      Checkpoint.read_blob ~dir ~name:"absent.blob");
  truncate_by (Filename.concat dir "x.blob") 4;
  expect_corrupt "truncated blob" (fun () ->
      Checkpoint.read_blob ~dir ~name:"x.blob");
  Checkpoint.write_blob ~dir ~name:"y.blob" data;
  corrupt_bytes (Filename.concat dir "y.blob") ~off:100 ~len:1;
  expect_corrupt "corrupt blob" (fun () ->
      Checkpoint.read_blob ~dir ~name:"y.blob")

(* --- tiered set --------------------------------------------------- *)

(* Fence pointers: range covers exactly the written records. *)
let segment_range () =
  let dir = fresh_dir () in
  let rs = records 700 in
  Segment.write ~dir ~name:"r.seg" rs;
  let r = Segment.open_reader ~dir ~name:"r.seg" in
  (match Segment.range r with
  | None -> Alcotest.fail "non-empty segment must report a range"
  | Some (lo, hi) ->
    Alcotest.(check int64) "min fence" (fst rs.(0)) lo;
    Alcotest.(check int64) "max fence" (fst rs.(Array.length rs - 1)) hi);
  Segment.close r;
  Segment.write ~dir ~name:"e.seg" [||];
  let e = Segment.open_reader ~dir ~name:"e.seg" in
  Alcotest.(check bool) "empty segment has no range" true
    (Segment.range e = None);
  Segment.close e

(* Fence pointers skip out-of-range segments in tiered probes without
   changing membership answers or the per-probe disk_probes count. *)
let tiered_fence_skips () =
  let dir = fresh_dir () in
  let t = Tiered_set.create ~dir ~shards:1 ~hot_capacity:8 () in
  (* Two batches with disjoint fingerprint ranges, sealed separately:
     probes landing in one batch's range fence-skip the other's
     segment(s). *)
  let lows =
    List.sort_uniq Int64.unsigned_compare
      (List.init 32 (fun i -> Int64.logand (fp_of i) 0xFFFFFFFFL))
  in
  let highs =
    List.sort_uniq Int64.unsigned_compare
      (List.init 32 (fun i -> Int64.logor (fp_of (100 + i)) 0x8000000000000000L))
  in
  List.iter (fun fp -> ignore (Tiered_set.add t fp)) lows;
  Tiered_set.flush t;
  List.iter (fun fp -> ignore (Tiered_set.add t fp)) highs;
  Tiered_set.flush t;
  let b = Tiered_set.stats t in
  List.iter
    (fun fp -> Alcotest.(check bool) "low member" true (Tiered_set.mem t fp))
    lows;
  List.iter
    (fun fp -> Alcotest.(check bool) "high member" true (Tiered_set.mem t fp))
    highs;
  let s = Tiered_set.stats t in
  Alcotest.(check bool) "fence skips happened" true
    (s.Tiered_set.fence_skips > b.Tiered_set.fence_skips);
  (* disk_probes counts per probe, not per segment: exactly one per
     [mem] above (the hot tier is empty after the flush). *)
  Alcotest.(check int) "disk_probes counts probes, not segments"
    (b.Tiered_set.disk_probes + List.length lows + List.length highs)
    s.Tiered_set.disk_probes;
  Tiered_set.close t

(* Dedup semantics against a model Hashtbl, through repeated spills
   (tiny hot capacity) and re-adds of known members. *)
let tiered_matches_model () =
  let dir = fresh_dir () in
  let t = Tiered_set.create ~dir ~shards:4 ~hot_capacity:16 () in
  let model = Hashtbl.create 512 in
  let adds = List.init 600 (fun i -> fp_of (i mod 400)) in
  List.iter
    (fun fp ->
      let fresh_model = not (Hashtbl.mem model fp) in
      if fresh_model then Hashtbl.replace model fp ();
      let fresh = Tiered_set.add t fp in
      Alcotest.(check bool) "add agrees with model" fresh_model fresh)
    adds;
  Hashtbl.iter
    (fun fp () -> Alcotest.(check bool) "member" true (Tiered_set.mem t fp))
    model;
  for i = 1000 to 1050 do
    Alcotest.(check bool) "non-member" false (Tiered_set.mem t (fp_of i))
  done;
  Alcotest.(check int) "cardinal" (Hashtbl.length model)
    (Tiered_set.cardinal t);
  let s = Tiered_set.stats t in
  Alcotest.(check bool) "spilled > 0" true (s.Tiered_set.spilled > 0);
  Alcotest.(check int) "spilled + hot = cardinal" (Hashtbl.length model)
    (s.Tiered_set.spilled + s.Tiered_set.hot);
  Tiered_set.close t

(* The tiered partition must coincide with [Shard_set.owner]: in the
   sharded engine the same fingerprint must route to the same domain
   whether the visited tier is RAM or disk. *)
let tiered_owner_agrees_with_shard_set () =
  let dir = fresh_dir () in
  let t = Tiered_set.create ~dir ~shards:4 ~hot_capacity:64 () in
  let s = Elin_kernel.Shard_set.create ~shards:4 () in
  for i = 0 to 2000 do
    let fp = fp_of i in
    Alcotest.(check int)
      (Printf.sprintf "owner of %s" (Fp.to_hex fp))
      (Elin_kernel.Shard_set.owner s fp)
      (Tiered_set.owner t fp)
  done;
  Tiered_set.close t

let tiered_owned_entry_points () =
  let dir = fresh_dir () in
  let t = Tiered_set.create ~dir ~shards:2 ~hot_capacity:8 () in
  for i = 0 to 100 do
    let fp = fp_of i in
    let shard = Tiered_set.owner t fp in
    Alcotest.(check bool) "fresh" true (Tiered_set.add_owned t ~shard fp);
    Alcotest.(check bool) "dup" false (Tiered_set.add_owned t ~shard fp);
    Alcotest.(check bool) "mem" true (Tiered_set.mem_owned t ~shard fp)
  done;
  (match Tiered_set.add_owned t ~shard:0 (fp_of 5000) with
  | exception Invalid_argument _ ->
    if Tiered_set.owner t (fp_of 5000) = 0 then
      Alcotest.fail "spurious wrong-shard rejection"
  | _ ->
    if Tiered_set.owner t (fp_of 5000) <> 0 then
      Alcotest.fail "wrong-shard add not rejected");
  Tiered_set.close t

(* flush + open_existing round trip: the reopened set sees every
   spilled member, continues sequence numbers, and stays disjoint. *)
let tiered_reopen_from_segments () =
  let dir = fresh_dir () in
  let t = Tiered_set.create ~dir ~shards:2 ~hot_capacity:32 () in
  for i = 0 to 199 do
    ignore (Tiered_set.add t (fp_of i))
  done;
  Tiered_set.flush t;
  let names = Tiered_set.segment_names t in
  let spilled = (Tiered_set.stats t).Tiered_set.spilled in
  Tiered_set.close t;
  Alcotest.(check int) "all spilled after flush" 200 spilled;
  let t2 =
    Tiered_set.open_existing ~dir ~shards:2 ~hot_capacity:32 ~segments:names ()
  in
  for i = 0 to 199 do
    Alcotest.(check bool) "reopened member" true (Tiered_set.mem t2 (fp_of i))
  done;
  for i = 0 to 199 do
    Alcotest.(check bool) "re-add is dup" false (Tiered_set.add t2 (fp_of i))
  done;
  (* New inserts spill under fresh sequence numbers, clashing with
     nothing. *)
  for i = 200 to 299 do
    Alcotest.(check bool) "new insert" true (Tiered_set.add t2 (fp_of i))
  done;
  Tiered_set.flush t2;
  let names2 = Tiered_set.segment_names t2 in
  Alcotest.(check bool) "segment inventory grew" true
    (List.length names2 > List.length names);
  Alcotest.(check bool) "old names retained" true
    (List.for_all (fun n -> List.mem n names2) names);
  Tiered_set.close t2

let tiered_reopen_corrupt_segment_is_loud () =
  let dir = fresh_dir () in
  let t = Tiered_set.create ~dir ~shards:2 ~hot_capacity:16 () in
  for i = 0 to 99 do
    ignore (Tiered_set.add t (fp_of i))
  done;
  Tiered_set.flush t;
  let names = Tiered_set.segment_names t in
  Tiered_set.close t;
  truncate_by (Filename.concat dir (List.hd names)) 5;
  expect_corrupt "open_existing over truncated segment" (fun () ->
      Tiered_set.open_existing ~dir ~shards:2 ~hot_capacity:16 ~segments:names
        ())

(* Deterministic spill shape: the same insertion sequence yields the
   same segment names and byte counts, run to run. *)
let tiered_flush_cadence_deterministic () =
  let shape dir =
    let t = Tiered_set.create ~dir ~shards:2 ~hot_capacity:16 () in
    for i = 0 to 499 do
      ignore (Tiered_set.add t (fp_of i))
    done;
    let s = Tiered_set.stats t in
    let names = Tiered_set.segment_names t in
    Tiered_set.close t;
    (names, s.Tiered_set.segments, s.Tiered_set.disk_bytes,
     s.Tiered_set.spilled, s.Tiered_set.flushes)
  in
  let a = shape (fresh_dir ()) and b = shape (fresh_dir ()) in
  Alcotest.(check bool) "identical spill shape" true (a = b)

(* --- cross-process persistence contract --------------------------- *)

(* Child side: re-derive the record family from the indices alone and
   interrogate the parent's segment.  Runs in a fresh process, so any
   in-process-only hash leaking into the format breaks it. *)
let child_sentinel = "--segment-probe-child"

let run_probe_child dir name n =
  let ok = ref true in
  let check b = if not b then ok := false in
  (try
     let r = Segment.open_reader ~dir ~name in
     check (Segment.length r = n);
     for i = 0 to n - 1 do
       let fp = fp_of i in
       check (Segment.probe r fp = Some (payload_of fp))
     done;
     for i = n to n + 20 do
       check (Segment.probe r (fp_of i) = None)
     done;
     Segment.close r
   with _ -> ok := false);
  exit (if !ok then 0 else 1)

let cross_process_probe () =
  let dir = fresh_dir () in
  let n = 1000 in
  let rs = records n in
  Alcotest.(check int) "no collisions in family" n (Array.length rs);
  Segment.write ~dir ~name:"xproc.seg" rs;
  let pid =
    Unix.create_process Sys.executable_name
      [| Sys.executable_name; child_sentinel; dir; "xproc.seg";
         string_of_int n |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED c ->
    Alcotest.fail (Printf.sprintf "probe child exited %d" c)
  | _ -> Alcotest.fail "probe child killed"

let () =
  (match Array.to_list Sys.argv with
  | _ :: s :: dir :: name :: n :: _ when s = child_sentinel ->
    run_probe_child dir name (int_of_string n)
  | _ -> ());
  Alcotest.run "store"
    [
      ( "crc32",
        [
          Alcotest.test_case "known answer" `Quick crc32_known_answer;
          Alcotest.test_case "incremental" `Quick crc32_incremental;
        ] );
      ( "segment",
        [
          Alcotest.test_case "roundtrip" `Quick segment_roundtrip;
          Alcotest.test_case "rejects unsorted" `Quick segment_rejects_unsorted;
          Alcotest.test_case "unsigned order" `Quick segment_unsigned_order;
          Alcotest.test_case "truncated tail" `Quick segment_truncated_tail;
          Alcotest.test_case "corrupt block" `Quick segment_corrupt_block;
          Alcotest.test_case "corrupt header" `Quick segment_corrupt_header;
          Alcotest.test_case "bad magic" `Quick segment_bad_magic;
          Alcotest.test_case "fence range" `Quick segment_range;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick checkpoint_roundtrip;
          Alcotest.test_case "torn manifest: old wins" `Quick
            checkpoint_torn_manifest_old_wins;
          Alcotest.test_case "corrupt manifest is loud" `Quick
            checkpoint_corrupt_manifest_is_loud;
          Alcotest.test_case "truncated manifest is loud" `Quick
            checkpoint_truncated_manifest_is_loud;
          Alcotest.test_case "prunes seq-2" `Quick checkpoint_prunes_old;
          Alcotest.test_case "blob roundtrip + corruption" `Quick
            blob_roundtrip_and_corruption;
        ] );
      ( "tiered",
        [
          Alcotest.test_case "matches model" `Quick tiered_matches_model;
          Alcotest.test_case "fence skips" `Quick tiered_fence_skips;
          Alcotest.test_case "owner agrees with Shard_set" `Quick
            tiered_owner_agrees_with_shard_set;
          Alcotest.test_case "owned entry points" `Quick
            tiered_owned_entry_points;
          Alcotest.test_case "reopen from segments" `Quick
            tiered_reopen_from_segments;
          Alcotest.test_case "reopen corrupt segment is loud" `Quick
            tiered_reopen_corrupt_segment_is_loud;
          Alcotest.test_case "deterministic flush cadence" `Quick
            tiered_flush_cadence_deterministic;
        ] );
      ( "cross-process",
        [ Alcotest.test_case "segment probe" `Quick cross_process_probe ] );
    ]

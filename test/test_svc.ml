(** Tests for the batched checking service (lib/svc): JSONL codec,
    job/verdict wire formats, the exit-code policy table, batch
    determinism across domain counts, and the isolation guarantees —
    poisoned jobs, per-job budgets, wall-clock timeouts, cooperative
    cancellation — none of which may kill the pool. *)

open Elin_spec
open Elin_history
open Elin_svc
open Elin_test_support

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Jsonl                                                              *)
(* ------------------------------------------------------------------ *)

let test_jsonl_print () =
  let open Jsonl in
  Alcotest.(check string) "object"
    {|{"a":1,"b":[true,null,"x"],"c":{"d":-2}}|}
    (to_string
       (Obj
          [
            ("a", Int 1);
            ("b", Arr [ Bool true; Null; Str "x" ]);
            ("c", Obj [ ("d", Int (-2)) ]);
          ]));
  Alcotest.(check string) "escapes" {|"a\"b\\c\nd\te"|}
    (to_string (Str "a\"b\\c\nd\te"));
  Alcotest.(check string) "control char" {|"\u0001"|}
    (to_string (Str "\001"));
  Alcotest.(check string) "float" "1.5" (to_string (Float 1.5))

let test_jsonl_parse () =
  let open Jsonl in
  Alcotest.(check bool) "nested" true
    (of_string {| {"a": [1, 2.5, "s", true, false, null], "b":{}} |}
    = Obj
        [
          ("a", Arr [ Int 1; Float 2.5; Str "s"; Bool true; Bool false; Null ]);
          ("b", Obj []);
        ]);
  Alcotest.(check bool) "unicode escape" true
    (of_string {|"Aé"|} = Str "A\xc3\xa9");
  Alcotest.(check (option int)) "int_mem" (Some 3)
    (int_mem "n" (of_string {|{"n":3}|}));
  Alcotest.(check (option string)) "str_mem" (Some "v")
    (str_mem "s" (of_string {|{"s":"v"}|}));
  let expect_error s =
    match of_string s with
    | _ -> Alcotest.failf "expected Parse_error on %S" s
    | exception Parse_error _ -> ()
  in
  List.iter expect_error
    [ "{"; "[1,]"; "tru"; "1 x"; {|{"a" 1}|}; {|"unterminated|}; "" ]

let test_jsonl_roundtrip () =
  let open Jsonl in
  let v =
    Obj
      [
        ("id", Str "j-1");
        ("xs", Arr [ Int 0; Float 3.25; Str "a b"; Null ]);
        ("nested", Obj [ ("t", Bool true); ("s", Str "\twith\nnewlines") ]);
      ]
  in
  Alcotest.(check bool) "print/parse round-trip" true
    (of_string (to_string v) = v)

(* ------------------------------------------------------------------ *)
(* Job / Verdict codecs                                               *)
(* ------------------------------------------------------------------ *)

let sample_history_text =
  "inv 0 0 fetch&inc\nres 0 0 0\ninv 1 0 fetch&inc\nres 1 0 1\n"

let mk_job ?(id = "j") ?(seq = 0) ?budget ?timeout_ms check =
  {
    Job.id;
    seq;
    spec = "fetch&increment";
    check;
    node_budget = budget;
    timeout_ms;
    history_text = sample_history_text;
    trace = None;
    parent = None;
  }

let test_job_roundtrip () =
  List.iter
    (fun check ->
      let j = mk_job ~budget:100 ~timeout_ms:50 check in
      match Job.of_line ~seq:0 (Job.to_line j) with
      | Ok j' ->
        Alcotest.(check bool)
          (Printf.sprintf "roundtrip %s" (Job.check_to_string check))
          true (j = j')
      | Error e -> Alcotest.failf "roundtrip failed: %s" e)
    [ Job.Linearizable; Job.T_lin 3; Job.Min_t; Job.Weak; Job.Full ]

let test_job_bad_lines () =
  let expect_err line =
    match Job.of_line ~seq:0 line with
    | Ok _ -> Alcotest.failf "expected error on %S" line
    | Error _ -> ()
  in
  expect_err "not json";
  expect_err {|{"id":"x"}|};                        (* missing fields *)
  expect_err {|{"id":"x","spec":"s","check":"nope","history":"h"}|};
  expect_err {|{"id":"x","spec":"s","check":"t-lin","history":"h"}|}
  (* t-lin without t *)

let test_verdict_line () =
  let v =
    {
      Verdict.job_id = "j1";
      seq = 4;
      check = Some Job.Min_t;
      status = Verdict.Pass;
      min_t = Some 2;
      nodes = 17;
      memo_hits = 3;
      wall_ms = 1.25;
    }
  in
  (* Canonical form: fixed field order, no wall-clock noise. *)
  Alcotest.(check string) "canonical line"
    {|{"id":"j1","check":"min-t","status":"pass","min_t":2,"nodes":17,"memo_hits":3}|}
    (Verdict.to_line v);
  Alcotest.(check bool) "stats adds wall_ms" true
    (Jsonl.float_mem "wall_ms" (Verdict.to_json ~stats:true v) = Some 1.25);
  match Verdict.of_json ~seq:4 (Verdict.to_json ~stats:true v) with
  | Ok v' -> Alcotest.(check bool) "verdict round-trip" true (v = v')
  | Error e -> Alcotest.failf "verdict round-trip failed: %s" e

(* ------------------------------------------------------------------ *)
(* Exit codes                                                         *)
(* ------------------------------------------------------------------ *)

let test_exit_codes () =
  let verdict status =
    {
      Verdict.job_id = "x";
      seq = 0;
      check = None;
      status;
      min_t = None;
      nodes = 0;
      memo_hits = 0;
      wall_ms = 0.;
    }
  in
  (* (statuses, expected exit code): the table from the CLI contract —
     0 ok, 1 violation, 2 usage, 3 budget/timeout; severity
     Usage > Exhausted > Violation > Ok. *)
  let table =
    [
      ([], 0);
      ([ Verdict.Pass ], 0);
      ([ Verdict.Pass; Verdict.Pass ], 0);
      ([ Verdict.Violation ], 1);
      ([ Verdict.Pass; Verdict.Violation ], 1);
      ([ Verdict.Budget_exhausted ], 3);
      ([ Verdict.Timed_out ], 3);
      ([ Verdict.Cancelled ], 3);
      ([ Verdict.Violation; Verdict.Budget_exhausted ], 3);
      ([ Verdict.Bad_job "x" ], 2);
      ([ Verdict.Failed "x" ], 2);
      ([ Verdict.Budget_exhausted; Verdict.Bad_job "x" ], 2);
      ([ Verdict.Violation; Verdict.Failed "x"; Verdict.Timed_out ], 2);
    ]
  in
  List.iteri
    (fun i (statuses, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "row %d" i)
        expected
        (Exit_code.to_int (Exit_code.of_verdicts (List.map verdict statuses))))
    table

(* ------------------------------------------------------------------ *)
(* Custom specs for the isolation tests                               *)
(* ------------------------------------------------------------------ *)

let fai = Faicounter.spec ()

(* A spec whose every transition raises: the poisoned checker. *)
let poison_spec =
  Spec.make ~name:"poison" ~initial:(Value.int 0)
    ~apply:(fun _ _ -> failwith "poisoned checker")
    ~all_ops:[ Op.fetch_inc ]

(* fai with a delay in every transition, for mid-run timeouts. *)
let sleepy_spec =
  Spec.make ~name:"sleepy" ~initial:(Spec.initial fai)
    ~apply:(fun q op ->
      Unix.sleepf 0.0002;
      Spec.apply fai q op)
    ~all_ops:(Spec.all_ops fai)

(* fai gated on a flag: transitions block until the gate opens, so a
   single-worker pool can be held mid-job deterministically. *)
let gate_open = Atomic.make false

let gate_spec =
  Spec.make ~name:"gate" ~initial:(Spec.initial fai)
    ~apply:(fun q op ->
      while not (Atomic.get gate_open) do
        Domain.cpu_relax ()
      done;
      Spec.apply fai q op)
    ~all_ops:(Spec.all_ops fai)

(* The a1 unsat family: k pending writes of distinct values plus a
   reader whose final read repeats value 1 — refuting it forces a walk
   of the whole interleaving space (thousands of nodes at k=8). *)
let unsat_reg_k = 8

let unsat_reg_spec =
  Register.spec ~domain:(List.init unsat_reg_k (fun i -> i + 1)) ()

let unsat_reg_text =
  let events =
    List.init unsat_reg_k (fun i ->
        Event.invoke ~proc:(i + 1) ~obj:0 (Op.write (i + 1)))
    @ List.concat_map
        (fun i ->
          [
            Event.invoke ~proc:0 ~obj:0 Op.read;
            Event.respond ~proc:0 ~obj:0 (Value.int (i + 1));
          ])
        (List.init unsat_reg_k (fun i -> i))
    @ [
        Event.invoke ~proc:0 ~obj:0 Op.read;
        Event.respond ~proc:0 ~obj:0 (Value.int 1);
      ]
  in
  Textio.to_string (History.of_events events)

let resolve name =
  match name with
  | "poison" -> poison_spec
  | "sleepy" -> sleepy_spec
  | "gate" -> gate_spec
  | "unsat-reg" -> unsat_reg_spec
  | "sleepy-unsat-reg" ->
    Spec.make ~name:"sleepy-unsat-reg" ~initial:(Spec.initial unsat_reg_spec)
      ~apply:(fun q op ->
        Unix.sleepf 0.0002;
        Spec.apply unsat_reg_spec q op)
      ~all_ops:(Spec.all_ops unsat_reg_spec)
  | other -> Pool.default_resolve other

let job ?budget ?timeout_ms ~id ~seq ~spec check =
  {
    Job.id;
    seq;
    spec;
    check;
    node_budget = budget;
    timeout_ms;
    history_text = sample_history_text;
    trace = None;
    parent = None;
  }

(* ------------------------------------------------------------------ *)
(* Batch determinism                                                  *)
(* ------------------------------------------------------------------ *)

let test_batch_determinism () =
  (* 8 histories x 3 checks; outputs must be byte-identical for any
     worker-domain count. *)
  let jobs =
    List.concat
      (List.init 8 (fun i ->
           let rng = Elin_kernel.Prng.create (500 + i) in
           let h = Gen.linearizable rng ~spec:fai ~procs:2 ~n_ops:8 () in
           let text = Textio.to_string h in
           List.mapi
             (fun j check ->
               {
                 Job.id = Printf.sprintf "d%d-%d" i j;
                 seq = (i * 3) + j;
                 spec = "fetch&increment";
                 check;
                 node_budget = None;
                 timeout_ms = None;
                 history_text = text;
                 trace = None;
                 parent = None;
               })
             [ Job.Linearizable; Job.Min_t; Job.Full ]))
  in
  let lines domains =
    List.map Verdict.to_line (Pool.run_batch ~domains jobs)
  in
  let one = lines 1 in
  Alcotest.(check int) "all jobs answered" (List.length jobs)
    (List.length one);
  Alcotest.(check (list string)) "domains=2 byte-identical" one (lines 2);
  Alcotest.(check (list string)) "domains=4 byte-identical" one (lines 4)

(* ------------------------------------------------------------------ *)
(* Isolation: poison, budget, timeout, cancel                         *)
(* ------------------------------------------------------------------ *)

let test_poisoned_job_contained () =
  (* A raising checker between two normal jobs: neighbors succeed, the
     pool survives, shutdown re-raises nothing. *)
  let jobs =
    [
      job ~id:"before" ~seq:0 ~spec:"fetch&increment" Job.Linearizable;
      job ~id:"poisoned" ~seq:1 ~spec:"poison" Job.Linearizable;
      job ~id:"after" ~seq:2 ~spec:"fetch&increment" Job.Linearizable;
    ]
  in
  let vs = Pool.run_batch ~resolve ~domains:2 jobs in
  match List.map (fun v -> (v.Verdict.job_id, v.Verdict.status)) vs with
  | [ ("before", Verdict.Pass); ("poisoned", Verdict.Failed msg);
      ("after", Verdict.Pass) ] ->
    Alcotest.(check bool) "failure names the poison" true
      (contains msg "poisoned checker")
  | other ->
    Alcotest.failf "unexpected verdicts: %s"
      (String.concat "; "
         (List.map
            (fun (id, st) ->
              Printf.sprintf "%s=%s" id (Verdict.status_to_string st))
            other))

let test_budget_exhausted () =
  let jobs =
    [
      { (job ~budget:50 ~id:"tight" ~seq:0 ~spec:"unsat-reg" Job.Linearizable)
        with Job.history_text = unsat_reg_text };
      job ~id:"fine" ~seq:1 ~spec:"fetch&increment" Job.Linearizable;
    ]
  in
  match Pool.run_batch ~resolve ~domains:1 jobs with
  | [ a; b ] ->
    Alcotest.(check bool) "budget verdict" true
      (a.Verdict.status = Verdict.Budget_exhausted);
    Alcotest.(check bool) "neighbor unharmed" true
      (b.Verdict.status = Verdict.Pass)
  | _ -> Alcotest.fail "expected two verdicts"

let test_timeout_pre_exec () =
  (* timeout_ms = 0: the deadline has passed before the job starts;
     the pre-exec poll converts it without running the checker. *)
  let jobs =
    [ job ~timeout_ms:0 ~id:"late" ~seq:0 ~spec:"fetch&increment" Job.Full ]
  in
  match Pool.run_batch ~resolve ~domains:1 jobs with
  | [ v ] ->
    Alcotest.(check bool) "timed out" true
      (v.Verdict.status = Verdict.Timed_out)
  | _ -> Alcotest.fail "expected one verdict"

let test_timeout_mid_run () =
  (* A slow unsat search under a 25ms deadline: the budget-poll hook
     fires mid-DFS and converts the run.  The neighbor still passes. *)
  let jobs =
    [
      { (job ~timeout_ms:25 ~id:"slow" ~seq:0 ~spec:"sleepy-unsat-reg"
           Job.Linearizable)
        with Job.history_text = unsat_reg_text };
      job ~id:"fine" ~seq:1 ~spec:"fetch&increment" Job.Linearizable;
    ]
  in
  match Pool.run_batch ~resolve ~domains:1 jobs with
  | [ a; b ] ->
    Alcotest.(check bool) "timed out mid-run" true
      (a.Verdict.status = Verdict.Timed_out);
    Alcotest.(check bool) "neighbor unharmed" true
      (b.Verdict.status = Verdict.Pass)
  | _ -> Alcotest.fail "expected two verdicts"

let test_cancellation () =
  (* One worker, held mid-job by the gate; a queued job cancelled
     while waiting is answered [cancelled] at its pre-exec poll. *)
  Atomic.set gate_open false;
  let pool = Pool.create ~resolve ~domains:1 () in
  Pool.submit pool (job ~id:"holder" ~seq:0 ~spec:"gate" Job.Linearizable);
  (* Give the worker time to pick up the holder and block on the gate. *)
  Unix.sleepf 0.05;
  Pool.submit pool
    (job ~id:"victim" ~seq:1 ~spec:"fetch&increment" Job.Linearizable);
  Alcotest.(check bool) "cancel known job" true (Pool.cancel pool "victim");
  Alcotest.(check bool) "cancel unknown job" false (Pool.cancel pool "ghost");
  Atomic.set gate_open true;
  let feeder = Domain.spawn (fun () -> Pool.shutdown pool) in
  let rec drain acc =
    match Pool.take_verdict pool with
    | Some v -> drain (v :: acc)
    | None -> List.rev acc
  in
  let vs =
    List.sort
      (fun a b -> compare a.Verdict.seq b.Verdict.seq)
      (drain [])
  in
  Domain.join feeder;
  match List.map (fun v -> (v.Verdict.job_id, v.Verdict.status)) vs with
  | [ ("holder", Verdict.Pass); ("victim", Verdict.Cancelled) ] -> ()
  | other ->
    Alcotest.failf "unexpected verdicts: %s"
      (String.concat "; "
         (List.map
            (fun (id, st) ->
              Printf.sprintf "%s=%s" id (Verdict.status_to_string st))
            other))

(* ------------------------------------------------------------------ *)
(* Batcher and metrics                                                *)
(* ------------------------------------------------------------------ *)

let test_batcher_reuse_counts () =
  (* 2 distinct histories x 3 engine checks each: exactly 2 prepares,
     4 hits.  (Weak/Full don't route through the batcher.) *)
  let rng = Elin_kernel.Prng.create 77 in
  let texts =
    List.init 2 (fun _ ->
        Textio.to_string (Gen.linearizable rng ~spec:fai ~procs:2 ~n_ops:6 ()))
  in
  let jobs =
    List.concat
      (List.mapi
         (fun i text ->
           List.mapi
             (fun j check ->
               {
                 Job.id = Printf.sprintf "r%d-%d" i j;
                 seq = (i * 3) + j;
                 spec = "fetch&increment";
                 check;
                 node_budget = None;
                 timeout_ms = None;
                 history_text = text;
                 trace = None;
                 parent = None;
               })
             [ Job.Linearizable; Job.T_lin 1; Job.Min_t ])
         texts)
  in
  let metrics = Metrics.create () in
  let vs = Pool.run_batch ~metrics ~domains:1 jobs in
  Alcotest.(check int) "all pass" 6
    (List.length
       (List.filter (fun v -> v.Verdict.status = Verdict.Pass) vs));
  let s = Metrics.snapshot metrics in
  Alcotest.(check int) "prepare misses = distinct keys" 2
    s.Metrics.prepare_misses;
  Alcotest.(check int) "prepare hits = the rest" 4 s.Metrics.prepare_hits;
  Alcotest.(check int) "submitted" 6 s.Metrics.submitted;
  Alcotest.(check int) "completed" 6 s.Metrics.completed

let test_metrics_statuses () =
  let jobs =
    [
      job ~id:"ok" ~seq:0 ~spec:"fetch&increment" Job.Linearizable;
      job ~id:"bad" ~seq:1 ~spec:"no-such-spec" Job.Linearizable;
      { (job ~budget:50 ~id:"tight" ~seq:2 ~spec:"unsat-reg" Job.Linearizable)
        with Job.history_text = unsat_reg_text };
    ]
  in
  let metrics = Metrics.create () in
  ignore (Pool.run_batch ~resolve ~metrics ~domains:1 jobs);
  let s = Metrics.snapshot metrics in
  Alcotest.(check int) "pass" 1 s.Metrics.pass;
  Alcotest.(check int) "bad_jobs" 1 s.Metrics.bad_jobs;
  Alcotest.(check int) "budget_exhausted" 1 s.Metrics.budget_exhausted;
  Alcotest.(check bool) "p50 <= p99" true (s.Metrics.p50_ms <= s.Metrics.p99_ms)

(* ------------------------------------------------------------------ *)
(* run_lines and the spool                                            *)
(* ------------------------------------------------------------------ *)

let test_run_lines_bad_lines () =
  let good =
    Job.to_line (job ~id:"g" ~seq:0 ~spec:"fetch&increment" Job.Linearizable)
  in
  let lines = [ "# comment"; good; "   "; "{oops"; good ] in
  let vs = Pool.run_lines ~domains:1 lines in
  Alcotest.(check int) "three verdicts (blank/comment skipped)" 3
    (List.length vs);
  match vs with
  | [ a; b; c ] ->
    Alcotest.(check bool) "first good" true (a.Verdict.status = Verdict.Pass);
    Alcotest.(check string) "bad line id names its line" "line-4"
      b.Verdict.job_id;
    (match b.Verdict.status with
    | Verdict.Bad_job _ -> ()
    | st -> Alcotest.failf "expected bad_job, got %s" (Verdict.status_to_string st));
    Alcotest.(check bool) "second good" true (c.Verdict.status = Verdict.Pass)
  | _ -> Alcotest.fail "unreachable"

let test_spool_scan () =
  let dir = "svc_spool_test" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  let oc = open_out (Filename.concat dir "a.jobs") in
  output_string oc
    (Job.to_line (job ~id:"s1" ~seq:0 ~spec:"fetch&increment" Job.Linearizable)
     ^ "\n" ^ "{corrupt\n");
  close_out oc;
  Alcotest.(check (list string)) "pending before" [ "a" ] (Spool.pending ~dir);
  let n = Spool.scan_once ~domains:1 ~dir () in
  Alcotest.(check int) "one file processed" 1 n;
  Alcotest.(check (list string)) "nothing pending after" []
    (Spool.pending ~dir);
  let ic = open_in (Filename.concat dir "a.verdicts") in
  let rec lines acc =
    match input_line ic with
    | l -> lines (l :: acc)
    | exception End_of_file -> List.rev acc
  in
  let out = lines [] in
  close_in ic;
  Alcotest.(check int) "two verdict lines" 2 (List.length out);
  Alcotest.(check int) "idempotent" 0 (Spool.scan_once ~domains:1 ~dir ())

(* ------------------------------------------------------------------ *)
(* Trace context on the wire; flight recorder dumps                   *)
(* ------------------------------------------------------------------ *)

let test_job_trace_wire () =
  (* With trace/parent set, the fields round-trip; without them the
     line is byte-identical to the pre-tracing wire format. *)
  let bare = mk_job Job.Linearizable in
  let bare_line = Job.to_line bare in
  Alcotest.(check bool) "absent trace leaves no wire residue" false
    (contains bare_line "trace" || contains bare_line "parent");
  let stamped = { bare with Job.trace = Some "t-9"; parent = Some "p-1" } in
  (match Job.of_line ~seq:0 (Job.to_line stamped) with
  | Ok j ->
    Alcotest.(check bool) "trace survives" true (j.Job.trace = Some "t-9");
    Alcotest.(check bool) "parent survives" true (j.Job.parent = Some "p-1")
  | Error e -> Alcotest.failf "stamped job failed to parse: %s" e);
  match Job.of_line ~seq:0 bare_line with
  | Ok j ->
    Alcotest.(check bool) "absent fields parse as None" true
      (j.Job.trace = None && j.Job.parent = None)
  | Error e -> Alcotest.failf "bare job failed to parse: %s" e

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_flight_sink f =
  let path = Filename.temp_file "elin-flight" ".jsonl" in
  Elin_obs.Recorder.set_sink (Some path);
  Fun.protect
    ~finally:(fun () ->
      Elin_obs.Recorder.set_sink None;
      Elin_obs.Recorder.clear ();
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_flight_dump_on_poisoned_job () =
  with_flight_sink (fun path ->
      let before = Elin_obs.Recorder.dump_count () in
      let vs =
        Pool.run_batch ~resolve ~domains:1
          [ job ~id:"boom" ~seq:0 ~spec:"poison" Job.Linearizable ]
      in
      (match vs with
      | [ { Verdict.status = Verdict.Failed _; _ } ] -> ()
      | _ -> Alcotest.fail "poisoned job must fail");
      Alcotest.(check bool) "a dump happened" true
        (Elin_obs.Recorder.dump_count () > before);
      let dump = read_file path in
      Alcotest.(check bool) "header names the reason" true
        (contains dump {|"flight":"elin.flight"|}
        && contains dump {|"reason":"job_failed"|});
      Alcotest.(check bool) "header names the offending job" true
        (contains dump {|"job":"boom"|});
      Alcotest.(check bool) "ring holds the job.start note" true
        (contains dump {|"kind":"job.start"|}))

let test_flight_dump_on_sigusr1 () =
  with_flight_sink (fun path ->
      Elin_obs.Recorder.install_sigusr1 ();
      let before = Elin_obs.Recorder.dump_count () in
      Unix.kill (Unix.getpid ()) Sys.sigusr1;
      (* OCaml delivers signals at safepoints; give the runtime a
         bounded moment to run the handler. *)
      let deadline = Unix.gettimeofday () +. 2. in
      while
        Elin_obs.Recorder.dump_count () = before
        && Unix.gettimeofday () < deadline
      do
        Unix.sleepf 0.01
      done;
      Alcotest.(check bool) "SIGUSR1 produced a dump" true
        (Elin_obs.Recorder.dump_count () > before);
      Alcotest.(check bool) "dump reason is sigusr1" true
        (contains (read_file path) {|"reason":"sigusr1"|}))

let () =
  Alcotest.run "svc"
    [
      ( "jsonl",
        [
          Support.quick "printing and escapes" test_jsonl_print;
          Support.quick "parsing and errors" test_jsonl_parse;
          Support.quick "round-trip" test_jsonl_roundtrip;
        ] );
      ( "codec",
        [
          Support.quick "job line round-trip" test_job_roundtrip;
          Support.quick "bad job lines rejected" test_job_bad_lines;
          Support.quick "verdict canonical line and round-trip"
            test_verdict_line;
        ] );
      ("exit-codes", [ Support.quick "policy table" test_exit_codes ]);
      ( "pool",
        [
          Support.quick "batch output independent of domain count"
            test_batch_determinism;
          Support.quick "poisoned job is contained" test_poisoned_job_contained;
          Support.quick "per-job budget yields budget_exhausted"
            test_budget_exhausted;
          Support.quick "timeout before start" test_timeout_pre_exec;
          Support.quick "timeout mid-run" test_timeout_mid_run;
          Support.quick "cooperative cancellation" test_cancellation;
        ] );
      ( "batcher-metrics",
        [
          Support.quick "prepare hit/miss accounting" test_batcher_reuse_counts;
          Support.quick "status counters and percentiles"
            test_metrics_statuses;
        ] );
      ( "trace-flight",
        [
          Support.quick "trace/parent wire fields round-trip"
            test_job_trace_wire;
          Support.quick "poisoned job triggers a flight dump"
            test_flight_dump_on_poisoned_job;
          Support.quick "SIGUSR1 triggers a flight dump"
            test_flight_dump_on_sigusr1;
        ] );
      ( "lines-spool",
        [
          Support.quick "bad lines become bad_job verdicts"
            test_run_lines_bad_lines;
          Support.quick "spool scan_once processes and settles"
            test_spool_scan;
        ] );
    ]

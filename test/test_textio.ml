(** History.Textio round-trip property tests: any generated history —
    linearizable, with pending operations, eventually-linearizable, or
    corrupted — survives print → parse unchanged, across several
    specs; plus unit coverage of tricky value tokens, comments, and
    Parse_error cases. *)

open Elin_spec
open Elin_history
open Elin_test_support

let specs =
  [
    ("fai", Faicounter.spec ());
    ("register", Register.spec ());
    ("fifo", Fifo.spec ());
  ]

let roundtrip h = Textio.of_string (Textio.to_string h)

(* Event-list equality, not polymorphic compare: History.t may carry
   derived structure. *)
let hist_eq a b = List.equal Event.equal (History.events a) (History.events b)

(* --- property tests, one per (spec, history shape) --- *)

let shape_props =
  List.concat_map
    (fun (sname, spec) ->
      [
        Support.seeded_prop
          (Printf.sprintf "roundtrip linearizable/%s" sname)
          (fun rng ->
            let h = Gen.linearizable rng ~spec ~procs:3 ~n_ops:12 () in
            hist_eq (roundtrip h) h);
        Support.seeded_prop
          (Printf.sprintf "roundtrip pending/%s" sname)
          (fun rng ->
            let h =
              Gen.linearizable_with_pending rng ~spec ~procs:3 ~n_ops:12 ()
            in
            hist_eq (roundtrip h) h);
        Support.seeded_prop
          (Printf.sprintf "roundtrip eventual/%s" sname)
          (fun rng ->
            let h, _ =
              Gen.eventually_linearizable rng ~spec ~procs:2 ~prefix_ops:4
                ~suffix_ops:8 ()
            in
            hist_eq (roundtrip h) h);
        Support.seeded_prop
          (Printf.sprintf "roundtrip corrupt/%s" sname)
          (fun rng ->
            let h = Gen.linearizable rng ~spec ~procs:2 ~n_ops:10 () in
            match Gen.corrupt rng h with
            | Some h' -> hist_eq (roundtrip h') h'
            | None -> true);
      ])
    specs

(* --- tricky values --- *)

let test_value_tokens () =
  (* Exercise every value constructor through an event line. *)
  let values =
    [
      Value.unit;
      Value.bool true;
      Value.bool false;
      Value.int 0;
      Value.int (-17);
      Value.str "atom";
      Value.pair (Value.int 1) (Value.str "x");
      Value.list [];
      Value.list [ Value.int 1; Value.pair (Value.bool false) Value.unit ];
      Value.pair
        (Value.list [ Value.str "a"; Value.str "b" ])
        (Value.pair (Value.int 2) (Value.int 3));
    ]
  in
  List.iter
    (fun v ->
      let e = Event.respond ~proc:0 ~obj:0 v in
      match Textio.event_of_line (Textio.event_to_line e) with
      | Some e' -> Alcotest.(check bool) "event round-trip" true (Event.equal e e')
      | None -> Alcotest.fail "event line parsed as blank")
    values;
  (* Invocation arguments too. *)
  let e =
    Event.invoke ~proc:1 ~obj:2
      (Op.make "op" ~args:[ Value.pair (Value.int 4) (Value.list [ Value.unit ]) ])
  in
  match Textio.event_of_line (Textio.event_to_line e) with
  | Some e' -> Alcotest.(check bool) "invoke round-trip" true (Event.equal e e')
  | None -> Alcotest.fail "invoke line parsed as blank"

let test_comments_and_blanks () =
  let h =
    Textio.of_string
      "# a comment\n\ninv 0 0 fetch&inc\n   \nres 0 0 0\n# done\n"
  in
  Alcotest.(check int) "two events" 2 (History.length h)

let test_parse_errors () =
  let expect_error line =
    match Textio.of_string line with
    | _ -> Alcotest.failf "expected Parse_error on %S" line
    | exception Textio.Parse_error _ -> ()
  in
  expect_error "res 0 0 zz";        (* unrecognized value token *)
  expect_error "res 0 0 1 2";       (* trailing tokens *)
  expect_error "res 0 0 (pair 1";   (* unterminated pair *)
  expect_error "res 0 0"            (* missing value *)

let () =
  Alcotest.run "textio"
    [
      ("roundtrip-properties", shape_props);
      ( "units",
        [
          Support.quick "tricky value tokens round-trip" test_value_tokens;
          Support.quick "comments and blank lines ignored"
            test_comments_and_blanks;
          Support.quick "malformed lines raise Parse_error" test_parse_errors;
        ] );
    ]
